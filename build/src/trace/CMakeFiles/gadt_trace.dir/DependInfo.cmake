
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ExecTree.cpp" "src/trace/CMakeFiles/gadt_trace.dir/ExecTree.cpp.o" "gcc" "src/trace/CMakeFiles/gadt_trace.dir/ExecTree.cpp.o.d"
  "/root/repo/src/trace/ExecTreeBuilder.cpp" "src/trace/CMakeFiles/gadt_trace.dir/ExecTreeBuilder.cpp.o" "gcc" "src/trace/CMakeFiles/gadt_trace.dir/ExecTreeBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/gadt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
