# Empty compiler generated dependencies file for gadt_trace.
# This may be replaced when dependencies are built.
