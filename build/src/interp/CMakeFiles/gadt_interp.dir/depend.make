# Empty dependencies file for gadt_interp.
# This may be replaced when dependencies are built.
