file(REMOVE_RECURSE
  "libgadt_interp.a"
)
