file(REMOVE_RECURSE
  "CMakeFiles/gadt_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/gadt_interp.dir/Interpreter.cpp.o.d"
  "CMakeFiles/gadt_interp.dir/Value.cpp.o"
  "CMakeFiles/gadt_interp.dir/Value.cpp.o.d"
  "libgadt_interp.a"
  "libgadt_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
