# Empty compiler generated dependencies file for gadt_interp.
# This may be replaced when dependencies are built.
