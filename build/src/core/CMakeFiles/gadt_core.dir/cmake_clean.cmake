file(REMOVE_RECURSE
  "CMakeFiles/gadt_core.dir/AssertionOracle.cpp.o"
  "CMakeFiles/gadt_core.dir/AssertionOracle.cpp.o.d"
  "CMakeFiles/gadt_core.dir/Debugger.cpp.o"
  "CMakeFiles/gadt_core.dir/Debugger.cpp.o.d"
  "CMakeFiles/gadt_core.dir/GADT.cpp.o"
  "CMakeFiles/gadt_core.dir/GADT.cpp.o.d"
  "CMakeFiles/gadt_core.dir/InteractiveOracle.cpp.o"
  "CMakeFiles/gadt_core.dir/InteractiveOracle.cpp.o.d"
  "CMakeFiles/gadt_core.dir/Oracle.cpp.o"
  "CMakeFiles/gadt_core.dir/Oracle.cpp.o.d"
  "CMakeFiles/gadt_core.dir/ReferenceOracle.cpp.o"
  "CMakeFiles/gadt_core.dir/ReferenceOracle.cpp.o.d"
  "CMakeFiles/gadt_core.dir/TestOracle.cpp.o"
  "CMakeFiles/gadt_core.dir/TestOracle.cpp.o.d"
  "libgadt_core.a"
  "libgadt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
