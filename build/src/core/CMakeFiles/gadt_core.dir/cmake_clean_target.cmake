file(REMOVE_RECURSE
  "libgadt_core.a"
)
