# Empty compiler generated dependencies file for gadt_core.
# This may be replaced when dependencies are built.
