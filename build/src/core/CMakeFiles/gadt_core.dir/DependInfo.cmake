
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AssertionOracle.cpp" "src/core/CMakeFiles/gadt_core.dir/AssertionOracle.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/AssertionOracle.cpp.o.d"
  "/root/repo/src/core/Debugger.cpp" "src/core/CMakeFiles/gadt_core.dir/Debugger.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/Debugger.cpp.o.d"
  "/root/repo/src/core/GADT.cpp" "src/core/CMakeFiles/gadt_core.dir/GADT.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/GADT.cpp.o.d"
  "/root/repo/src/core/InteractiveOracle.cpp" "src/core/CMakeFiles/gadt_core.dir/InteractiveOracle.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/InteractiveOracle.cpp.o.d"
  "/root/repo/src/core/Oracle.cpp" "src/core/CMakeFiles/gadt_core.dir/Oracle.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/Oracle.cpp.o.d"
  "/root/repo/src/core/ReferenceOracle.cpp" "src/core/CMakeFiles/gadt_core.dir/ReferenceOracle.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/ReferenceOracle.cpp.o.d"
  "/root/repo/src/core/TestOracle.cpp" "src/core/CMakeFiles/gadt_core.dir/TestOracle.cpp.o" "gcc" "src/core/CMakeFiles/gadt_core.dir/TestOracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/gadt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/gadt_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/gadt_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gadt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gadt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gadt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
