# Empty dependencies file for gadt_tgen.
# This may be replaced when dependencies are built.
