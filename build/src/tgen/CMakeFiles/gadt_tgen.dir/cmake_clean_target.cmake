file(REMOVE_RECURSE
  "libgadt_tgen.a"
)
