
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tgen/Classifier.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/Classifier.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/Classifier.cpp.o.d"
  "/root/repo/src/tgen/ConstEval.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/ConstEval.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/ConstEval.cpp.o.d"
  "/root/repo/src/tgen/FrameGen.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/FrameGen.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/FrameGen.cpp.o.d"
  "/root/repo/src/tgen/Generator.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/Generator.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/Generator.cpp.o.d"
  "/root/repo/src/tgen/ReportDB.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/ReportDB.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/ReportDB.cpp.o.d"
  "/root/repo/src/tgen/SpecParser.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/SpecParser.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/SpecParser.cpp.o.d"
  "/root/repo/src/tgen/TestSpec.cpp" "src/tgen/CMakeFiles/gadt_tgen.dir/TestSpec.cpp.o" "gcc" "src/tgen/CMakeFiles/gadt_tgen.dir/TestSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/gadt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
