file(REMOVE_RECURSE
  "CMakeFiles/gadt_tgen.dir/Classifier.cpp.o"
  "CMakeFiles/gadt_tgen.dir/Classifier.cpp.o.d"
  "CMakeFiles/gadt_tgen.dir/ConstEval.cpp.o"
  "CMakeFiles/gadt_tgen.dir/ConstEval.cpp.o.d"
  "CMakeFiles/gadt_tgen.dir/FrameGen.cpp.o"
  "CMakeFiles/gadt_tgen.dir/FrameGen.cpp.o.d"
  "CMakeFiles/gadt_tgen.dir/Generator.cpp.o"
  "CMakeFiles/gadt_tgen.dir/Generator.cpp.o.d"
  "CMakeFiles/gadt_tgen.dir/ReportDB.cpp.o"
  "CMakeFiles/gadt_tgen.dir/ReportDB.cpp.o.d"
  "CMakeFiles/gadt_tgen.dir/SpecParser.cpp.o"
  "CMakeFiles/gadt_tgen.dir/SpecParser.cpp.o.d"
  "CMakeFiles/gadt_tgen.dir/TestSpec.cpp.o"
  "CMakeFiles/gadt_tgen.dir/TestSpec.cpp.o.d"
  "libgadt_tgen.a"
  "libgadt_tgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
