# Empty dependencies file for gadt_workload.
# This may be replaced when dependencies are built.
