
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ArrsumFixture.cpp" "src/workload/CMakeFiles/gadt_workload.dir/ArrsumFixture.cpp.o" "gcc" "src/workload/CMakeFiles/gadt_workload.dir/ArrsumFixture.cpp.o.d"
  "/root/repo/src/workload/PaperPrograms.cpp" "src/workload/CMakeFiles/gadt_workload.dir/PaperPrograms.cpp.o" "gcc" "src/workload/CMakeFiles/gadt_workload.dir/PaperPrograms.cpp.o.d"
  "/root/repo/src/workload/Payroll.cpp" "src/workload/CMakeFiles/gadt_workload.dir/Payroll.cpp.o" "gcc" "src/workload/CMakeFiles/gadt_workload.dir/Payroll.cpp.o.d"
  "/root/repo/src/workload/Synthetic.cpp" "src/workload/CMakeFiles/gadt_workload.dir/Synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/gadt_workload.dir/Synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tgen/CMakeFiles/gadt_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gadt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
