file(REMOVE_RECURSE
  "libgadt_workload.a"
)
