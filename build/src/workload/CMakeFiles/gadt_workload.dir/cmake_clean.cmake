file(REMOVE_RECURSE
  "CMakeFiles/gadt_workload.dir/ArrsumFixture.cpp.o"
  "CMakeFiles/gadt_workload.dir/ArrsumFixture.cpp.o.d"
  "CMakeFiles/gadt_workload.dir/PaperPrograms.cpp.o"
  "CMakeFiles/gadt_workload.dir/PaperPrograms.cpp.o.d"
  "CMakeFiles/gadt_workload.dir/Payroll.cpp.o"
  "CMakeFiles/gadt_workload.dir/Payroll.cpp.o.d"
  "CMakeFiles/gadt_workload.dir/Synthetic.cpp.o"
  "CMakeFiles/gadt_workload.dir/Synthetic.cpp.o.d"
  "libgadt_workload.a"
  "libgadt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
