
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/CallGraph.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/CallGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/ControlDep.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/ControlDep.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/ControlDep.cpp.o.d"
  "/root/repo/src/analysis/Dataflow.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/Dataflow.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/Dataflow.cpp.o.d"
  "/root/repo/src/analysis/DefUse.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/DefUse.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/DefUse.cpp.o.d"
  "/root/repo/src/analysis/SDG.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/SDG.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/SDG.cpp.o.d"
  "/root/repo/src/analysis/SideEffects.cpp" "src/analysis/CMakeFiles/gadt_analysis.dir/SideEffects.cpp.o" "gcc" "src/analysis/CMakeFiles/gadt_analysis.dir/SideEffects.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
