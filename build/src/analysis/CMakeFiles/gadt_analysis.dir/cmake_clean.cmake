file(REMOVE_RECURSE
  "CMakeFiles/gadt_analysis.dir/CFG.cpp.o"
  "CMakeFiles/gadt_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/gadt_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/gadt_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/gadt_analysis.dir/ControlDep.cpp.o"
  "CMakeFiles/gadt_analysis.dir/ControlDep.cpp.o.d"
  "CMakeFiles/gadt_analysis.dir/Dataflow.cpp.o"
  "CMakeFiles/gadt_analysis.dir/Dataflow.cpp.o.d"
  "CMakeFiles/gadt_analysis.dir/DefUse.cpp.o"
  "CMakeFiles/gadt_analysis.dir/DefUse.cpp.o.d"
  "CMakeFiles/gadt_analysis.dir/SDG.cpp.o"
  "CMakeFiles/gadt_analysis.dir/SDG.cpp.o.d"
  "CMakeFiles/gadt_analysis.dir/SideEffects.cpp.o"
  "CMakeFiles/gadt_analysis.dir/SideEffects.cpp.o.d"
  "libgadt_analysis.a"
  "libgadt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
