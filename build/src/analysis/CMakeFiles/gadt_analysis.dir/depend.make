# Empty dependencies file for gadt_analysis.
# This may be replaced when dependencies are built.
