file(REMOVE_RECURSE
  "libgadt_analysis.a"
)
