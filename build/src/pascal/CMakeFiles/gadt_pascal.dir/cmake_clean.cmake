file(REMOVE_RECURSE
  "CMakeFiles/gadt_pascal.dir/AST.cpp.o"
  "CMakeFiles/gadt_pascal.dir/AST.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/Frontend.cpp.o"
  "CMakeFiles/gadt_pascal.dir/Frontend.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/Lexer.cpp.o"
  "CMakeFiles/gadt_pascal.dir/Lexer.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/Parser.cpp.o"
  "CMakeFiles/gadt_pascal.dir/Parser.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/gadt_pascal.dir/PrettyPrinter.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/Sema.cpp.o"
  "CMakeFiles/gadt_pascal.dir/Sema.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/Token.cpp.o"
  "CMakeFiles/gadt_pascal.dir/Token.cpp.o.d"
  "CMakeFiles/gadt_pascal.dir/Type.cpp.o"
  "CMakeFiles/gadt_pascal.dir/Type.cpp.o.d"
  "libgadt_pascal.a"
  "libgadt_pascal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_pascal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
