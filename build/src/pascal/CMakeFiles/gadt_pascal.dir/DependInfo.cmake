
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pascal/AST.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/AST.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/AST.cpp.o.d"
  "/root/repo/src/pascal/Frontend.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/Frontend.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/Frontend.cpp.o.d"
  "/root/repo/src/pascal/Lexer.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/Lexer.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/Lexer.cpp.o.d"
  "/root/repo/src/pascal/Parser.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/Parser.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/Parser.cpp.o.d"
  "/root/repo/src/pascal/PrettyPrinter.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/PrettyPrinter.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/PrettyPrinter.cpp.o.d"
  "/root/repo/src/pascal/Sema.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/Sema.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/Sema.cpp.o.d"
  "/root/repo/src/pascal/Token.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/Token.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/Token.cpp.o.d"
  "/root/repo/src/pascal/Type.cpp" "src/pascal/CMakeFiles/gadt_pascal.dir/Type.cpp.o" "gcc" "src/pascal/CMakeFiles/gadt_pascal.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
