# Empty dependencies file for gadt_pascal.
# This may be replaced when dependencies are built.
