file(REMOVE_RECURSE
  "libgadt_pascal.a"
)
