# Empty dependencies file for gadt_support.
# This may be replaced when dependencies are built.
