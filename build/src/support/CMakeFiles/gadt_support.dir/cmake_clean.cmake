file(REMOVE_RECURSE
  "CMakeFiles/gadt_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/gadt_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/gadt_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/gadt_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/gadt_support.dir/StringUtils.cpp.o"
  "CMakeFiles/gadt_support.dir/StringUtils.cpp.o.d"
  "libgadt_support.a"
  "libgadt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
