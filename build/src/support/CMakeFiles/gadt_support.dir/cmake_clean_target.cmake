file(REMOVE_RECURSE
  "libgadt_support.a"
)
