# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sema[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_exectree[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_sdg[1]_include.cmake")
include("/root/repo/build/tests/test_slicing[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_tgen[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_payroll[1]_include.cmake")
