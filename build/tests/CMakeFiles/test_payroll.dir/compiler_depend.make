# Empty compiler generated dependencies file for test_payroll.
# This may be replaced when dependencies are built.
