file(REMOVE_RECURSE
  "CMakeFiles/test_payroll.dir/PayrollTest.cpp.o"
  "CMakeFiles/test_payroll.dir/PayrollTest.cpp.o.d"
  "test_payroll"
  "test_payroll.pdb"
  "test_payroll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
