file(REMOVE_RECURSE
  "CMakeFiles/test_sdg.dir/SDGTest.cpp.o"
  "CMakeFiles/test_sdg.dir/SDGTest.cpp.o.d"
  "test_sdg"
  "test_sdg.pdb"
  "test_sdg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
