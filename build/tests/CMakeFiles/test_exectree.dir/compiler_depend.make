# Empty compiler generated dependencies file for test_exectree.
# This may be replaced when dependencies are built.
