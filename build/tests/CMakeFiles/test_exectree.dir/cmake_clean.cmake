file(REMOVE_RECURSE
  "CMakeFiles/test_exectree.dir/ExecTreeTest.cpp.o"
  "CMakeFiles/test_exectree.dir/ExecTreeTest.cpp.o.d"
  "test_exectree"
  "test_exectree.pdb"
  "test_exectree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exectree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
