
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/test_sema.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/test_sema.dir/SemaTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/gadt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gadt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/gadt_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/gadt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/gadt_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gadt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gadt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gadt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
