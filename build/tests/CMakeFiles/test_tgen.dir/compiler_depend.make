# Empty compiler generated dependencies file for test_tgen.
# This may be replaced when dependencies are built.
