# Empty dependencies file for payroll_demo.
# This may be replaced when dependencies are built.
