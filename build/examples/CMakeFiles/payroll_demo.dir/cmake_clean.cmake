file(REMOVE_RECURSE
  "CMakeFiles/payroll_demo.dir/payroll_demo.cpp.o"
  "CMakeFiles/payroll_demo.dir/payroll_demo.cpp.o.d"
  "payroll_demo"
  "payroll_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
