file(REMOVE_RECURSE
  "CMakeFiles/tgen_demo.dir/tgen_demo.cpp.o"
  "CMakeFiles/tgen_demo.dir/tgen_demo.cpp.o.d"
  "tgen_demo"
  "tgen_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgen_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
