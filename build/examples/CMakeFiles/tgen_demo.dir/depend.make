# Empty dependencies file for tgen_demo.
# This may be replaced when dependencies are built.
