file(REMOVE_RECURSE
  "CMakeFiles/gadt_session.dir/gadt_session.cpp.o"
  "CMakeFiles/gadt_session.dir/gadt_session.cpp.o.d"
  "gadt_session"
  "gadt_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
