# Empty compiler generated dependencies file for gadt_session.
# This may be replaced when dependencies are built.
