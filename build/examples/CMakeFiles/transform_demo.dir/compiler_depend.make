# Empty compiler generated dependencies file for transform_demo.
# This may be replaced when dependencies are built.
