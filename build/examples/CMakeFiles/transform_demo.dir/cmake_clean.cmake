file(REMOVE_RECURSE
  "CMakeFiles/transform_demo.dir/transform_demo.cpp.o"
  "CMakeFiles/transform_demo.dir/transform_demo.cpp.o.d"
  "transform_demo"
  "transform_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
