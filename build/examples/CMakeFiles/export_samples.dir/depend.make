# Empty dependencies file for export_samples.
# This may be replaced when dependencies are built.
