file(REMOVE_RECURSE
  "CMakeFiles/export_samples.dir/export_samples.cpp.o"
  "CMakeFiles/export_samples.dir/export_samples.cpp.o.d"
  "export_samples"
  "export_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
