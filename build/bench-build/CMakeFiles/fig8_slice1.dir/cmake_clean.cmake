file(REMOVE_RECURSE
  "../bench/fig8_slice1"
  "../bench/fig8_slice1.pdb"
  "CMakeFiles/fig8_slice1.dir/fig8_slice1.cpp.o"
  "CMakeFiles/fig8_slice1.dir/fig8_slice1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_slice1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
