# Empty dependencies file for fig8_slice1.
# This may be replaced when dependencies are built.
