# Empty dependencies file for slice_sizes.
# This may be replaced when dependencies are built.
