file(REMOVE_RECURSE
  "../bench/slice_sizes"
  "../bench/slice_sizes.pdb"
  "CMakeFiles/slice_sizes.dir/slice_sizes.cpp.o"
  "CMakeFiles/slice_sizes.dir/slice_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
