file(REMOVE_RECURSE
  "../bench/transform_equivalence"
  "../bench/transform_equivalence.pdb"
  "CMakeFiles/transform_equivalence.dir/transform_equivalence.cpp.o"
  "CMakeFiles/transform_equivalence.dir/transform_equivalence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
