# Empty dependencies file for transform_equivalence.
# This may be replaced when dependencies are built.
