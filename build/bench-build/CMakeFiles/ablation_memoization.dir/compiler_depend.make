# Empty compiler generated dependencies file for ablation_memoization.
# This may be replaced when dependencies are built.
