file(REMOVE_RECURSE
  "../bench/ablation_memoization"
  "../bench/ablation_memoization.pdb"
  "CMakeFiles/ablation_memoization.dir/ablation_memoization.cpp.o"
  "CMakeFiles/ablation_memoization.dir/ablation_memoization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
