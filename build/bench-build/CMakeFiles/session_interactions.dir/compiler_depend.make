# Empty compiler generated dependencies file for session_interactions.
# This may be replaced when dependencies are built.
