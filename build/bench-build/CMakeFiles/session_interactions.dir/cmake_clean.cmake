file(REMOVE_RECURSE
  "../bench/session_interactions"
  "../bench/session_interactions.pdb"
  "CMakeFiles/session_interactions.dir/session_interactions.cpp.o"
  "CMakeFiles/session_interactions.dir/session_interactions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
