file(REMOVE_RECURSE
  "../bench/ablation_strategies"
  "../bench/ablation_strategies.pdb"
  "CMakeFiles/ablation_strategies.dir/ablation_strategies.cpp.o"
  "CMakeFiles/ablation_strategies.dir/ablation_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
