file(REMOVE_RECURSE
  "../bench/fig1_tgen_frames"
  "../bench/fig1_tgen_frames.pdb"
  "CMakeFiles/fig1_tgen_frames.dir/fig1_tgen_frames.cpp.o"
  "CMakeFiles/fig1_tgen_frames.dir/fig1_tgen_frames.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tgen_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
