# Empty compiler generated dependencies file for fig1_tgen_frames.
# This may be replaced when dependencies are built.
