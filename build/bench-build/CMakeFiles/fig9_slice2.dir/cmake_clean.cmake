file(REMOVE_RECURSE
  "../bench/fig9_slice2"
  "../bench/fig9_slice2.pdb"
  "CMakeFiles/fig9_slice2.dir/fig9_slice2.cpp.o"
  "CMakeFiles/fig9_slice2.dir/fig9_slice2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_slice2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
