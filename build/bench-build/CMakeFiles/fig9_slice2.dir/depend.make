# Empty dependencies file for fig9_slice2.
# This may be replaced when dependencies are built.
