file(REMOVE_RECURSE
  "../bench/fig2_slice"
  "../bench/fig2_slice.pdb"
  "CMakeFiles/fig2_slice.dir/fig2_slice.cpp.o"
  "CMakeFiles/fig2_slice.dir/fig2_slice.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
