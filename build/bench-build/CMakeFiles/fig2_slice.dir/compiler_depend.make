# Empty compiler generated dependencies file for fig2_slice.
# This may be replaced when dependencies are built.
