# Empty dependencies file for fig56_irrelevant_calls.
# This may be replaced when dependencies are built.
