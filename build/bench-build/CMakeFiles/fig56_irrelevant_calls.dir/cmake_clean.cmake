file(REMOVE_RECURSE
  "../bench/fig56_irrelevant_calls"
  "../bench/fig56_irrelevant_calls.pdb"
  "CMakeFiles/fig56_irrelevant_calls.dir/fig56_irrelevant_calls.cpp.o"
  "CMakeFiles/fig56_irrelevant_calls.dir/fig56_irrelevant_calls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig56_irrelevant_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
