# Empty compiler generated dependencies file for fig7_exectree.
# This may be replaced when dependencies are built.
