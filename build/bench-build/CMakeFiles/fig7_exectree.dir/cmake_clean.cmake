file(REMOVE_RECURSE
  "../bench/fig7_exectree"
  "../bench/fig7_exectree.pdb"
  "CMakeFiles/fig7_exectree.dir/fig7_exectree.cpp.o"
  "CMakeFiles/fig7_exectree.dir/fig7_exectree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_exectree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
