# Empty compiler generated dependencies file for scaling_queries.
# This may be replaced when dependencies are built.
