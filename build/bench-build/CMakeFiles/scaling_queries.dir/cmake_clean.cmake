file(REMOVE_RECURSE
  "../bench/scaling_queries"
  "../bench/scaling_queries.pdb"
  "CMakeFiles/scaling_queries.dir/scaling_queries.cpp.o"
  "CMakeFiles/scaling_queries.dir/scaling_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
