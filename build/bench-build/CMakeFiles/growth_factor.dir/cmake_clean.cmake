file(REMOVE_RECURSE
  "../bench/growth_factor"
  "../bench/growth_factor.pdb"
  "CMakeFiles/growth_factor.dir/growth_factor.cpp.o"
  "CMakeFiles/growth_factor.dir/growth_factor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growth_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
