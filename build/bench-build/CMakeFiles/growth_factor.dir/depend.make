# Empty dependencies file for growth_factor.
# This may be replaced when dependencies are built.
