//===- ParserTest.cpp - Parser unit tests ---------------------------------===//

#include "pascal/Parser.h"
#include "pascal/PrettyPrinter.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> parse(std::string_view Src) {
  DiagnosticsEngine Diags;
  Parser P(Src, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

void expectParseError(std::string_view Src) {
  DiagnosticsEngine Diags;
  Parser P(Src, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  EXPECT_EQ(Prog, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, MinimalProgram) {
  auto Prog = parse("program tiny; begin end.");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->getName(), "tiny");
  EXPECT_TRUE(Prog->getMain()->getBody()->getBody().empty());
}

TEST(ParserTest, GlobalVariables) {
  auto Prog = parse("program p; var x, y: integer; b: boolean; begin end.");
  ASSERT_TRUE(Prog);
  const auto &Globals = Prog->getMain()->getLocals();
  ASSERT_EQ(Globals.size(), 3u);
  EXPECT_EQ(Globals[0]->getName(), "x");
  EXPECT_TRUE(Globals[0]->getType()->isInteger());
  EXPECT_EQ(Globals[2]->getName(), "b");
  EXPECT_TRUE(Globals[2]->getType()->isBoolean());
}

TEST(ParserTest, TypeDefinitions) {
  auto Prog = parse("program p; type arr = array[1..10] of integer;"
                    "var a: arr; begin end.");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->getTypeDefs().size(), 1u);
  const Type *T = Prog->getTypeDefs()[0].Ty;
  EXPECT_TRUE(T->isArray());
  EXPECT_EQ(T->getLowerBound(), 1);
  EXPECT_EQ(T->getUpperBound(), 10);
  EXPECT_EQ(Prog->getMain()->getLocals()[0]->getType(), T);
}

TEST(ParserTest, NegativeArrayBounds) {
  auto Prog = parse("program p; var a: array[-5..5] of integer; begin end.");
  ASSERT_TRUE(Prog);
  const Type *T = Prog->getMain()->getLocals()[0]->getType();
  EXPECT_EQ(T->getLowerBound(), -5);
  EXPECT_EQ(T->getArraySize(), 11);
}

TEST(ParserTest, ProcedureWithParamModes) {
  auto Prog = parse("program p;"
                    "procedure q(a: integer; var b: integer;"
                    "            in c: integer; out d: integer);"
                    "begin b := a; end;"
                    "begin end.");
  ASSERT_TRUE(Prog);
  RoutineDecl *Q = Prog->getMain()->findNested("q");
  ASSERT_TRUE(Q);
  ASSERT_EQ(Q->getParams().size(), 4u);
  EXPECT_EQ(Q->getParams()[0]->getMode(), ParamMode::Value);
  EXPECT_EQ(Q->getParams()[1]->getMode(), ParamMode::Var);
  EXPECT_EQ(Q->getParams()[2]->getMode(), ParamMode::In);
  EXPECT_EQ(Q->getParams()[3]->getMode(), ParamMode::Out);
}

TEST(ParserTest, FunctionWithReturnType) {
  auto Prog = parse("program p;"
                    "function f(x: integer): integer;"
                    "begin f := x + 1; end;"
                    "begin end.");
  ASSERT_TRUE(Prog);
  RoutineDecl *F = Prog->getMain()->findNested("f");
  ASSERT_TRUE(F);
  EXPECT_TRUE(F->isFunction());
  EXPECT_TRUE(F->getReturnType()->isInteger());
}

TEST(ParserTest, NestedProcedures) {
  auto Prog = parse("program p;"
                    "procedure outer;"
                    "  procedure inner; begin end;"
                    "begin inner; end;"
                    "begin outer; end.");
  ASSERT_TRUE(Prog);
  RoutineDecl *Outer = Prog->getMain()->findNested("outer");
  ASSERT_TRUE(Outer);
  EXPECT_TRUE(Outer->findNested("inner"));
  EXPECT_EQ(Outer->findNested("inner")->getParent(), Outer);
}

TEST(ParserTest, LabelsAndGotos) {
  auto Prog = parse("program p; label 9; var x: integer;"
                    "begin x := 1; goto 9; x := 2; 9: x := 3; end.");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->getMain()->getLabels().size(), 1u);
  EXPECT_EQ(Prog->getMain()->getLabels()[0], 9);
  const auto &Body = Prog->getMain()->getBody()->getBody();
  ASSERT_EQ(Body.size(), 4u);
  EXPECT_EQ(Body[1]->getKind(), Stmt::Kind::Goto);
  EXPECT_EQ(Body[3]->getKind(), Stmt::Kind::Labeled);
}

TEST(ParserTest, ControlFlowStatements) {
  auto Prog = parse(
      "program p; var i, s: integer; b: boolean;"
      "begin"
      "  if i < 10 then s := 1 else s := 2;"
      "  while i > 0 do i := i - 1;"
      "  repeat i := i + 1; until i = 10;"
      "  for i := 1 to 10 do s := s + i;"
      "  for i := 10 downto 1 do s := s - i;"
      "end.");
  ASSERT_TRUE(Prog);
  const auto &Body = Prog->getMain()->getBody()->getBody();
  ASSERT_EQ(Body.size(), 5u);
  EXPECT_EQ(Body[0]->getKind(), Stmt::Kind::If);
  EXPECT_EQ(Body[1]->getKind(), Stmt::Kind::While);
  EXPECT_EQ(Body[2]->getKind(), Stmt::Kind::Repeat);
  EXPECT_EQ(Body[3]->getKind(), Stmt::Kind::For);
  EXPECT_TRUE(cast<ForStmt>(Body[4].get())->isDownward());
}

TEST(ParserTest, OperatorPrecedence) {
  auto Prog = parse("program p; var x: integer; b: boolean;"
                    "begin x := 1 + 2 * 3; b := x < 4 + 1; end.");
  ASSERT_TRUE(Prog);
  const auto &Body = Prog->getMain()->getBody()->getBody();
  const auto *A0 = cast<AssignStmt>(Body[0].get());
  EXPECT_EQ(A0->getValue()->str(), "1 + 2 * 3");
  const auto *B0 = cast<BinaryExpr>(A0->getValue());
  EXPECT_EQ(B0->getOp(), BinaryOp::Add);
  const auto *A1 = cast<AssignStmt>(Body[1].get());
  const auto *B1 = cast<BinaryExpr>(A1->getValue());
  EXPECT_EQ(B1->getOp(), BinaryOp::Lt);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto Prog = parse("program p; var x: integer;"
                    "begin x := (1 + 2) * 3; end.");
  const auto &Body = Prog->getMain()->getBody()->getBody();
  const auto *A = cast<AssignStmt>(Body[0].get());
  const auto *Mul = cast<BinaryExpr>(A->getValue());
  EXPECT_EQ(Mul->getOp(), BinaryOp::Mul);
  EXPECT_EQ(A->getValue()->str(), "(1 + 2) * 3");
}

TEST(ParserTest, ArrayConstructorExpression) {
  auto Prog = parse("program p; type arr = array[1..2] of integer;"
                    "procedure q(a: arr); begin end;"
                    "begin q([1, 2]); end.");
  ASSERT_TRUE(Prog);
  const auto &Body = Prog->getMain()->getBody()->getBody();
  const auto *PC = cast<ProcCallStmt>(Body[0].get());
  ASSERT_EQ(PC->getArgs().size(), 1u);
  EXPECT_EQ(PC->getArgs()[0]->getKind(), Expr::Kind::ArrayLiteral);
}

TEST(ParserTest, ReadAndWriteStatements) {
  auto Prog = parse("program p; var x: integer;"
                    "begin read(x); write(x, ' '); writeln(x + 1); end.");
  const auto &Body = Prog->getMain()->getBody()->getBody();
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_EQ(Body[0]->getKind(), Stmt::Kind::Read);
  EXPECT_EQ(Body[1]->getKind(), Stmt::Kind::Write);
  EXPECT_FALSE(cast<WriteStmt>(Body[1].get())->isWriteln());
  EXPECT_TRUE(cast<WriteStmt>(Body[2].get())->isWriteln());
}

TEST(ParserTest, UnaryOperators) {
  auto Prog = parse("program p; var x: integer; b: boolean;"
                    "begin x := -x + 3; b := not b; end.");
  const auto &Body = Prog->getMain()->getBody()->getBody();
  const auto *A = cast<AssignStmt>(Body[0].get());
  EXPECT_EQ(A->getValue()->str(), "-x + 3");
}

TEST(ParserTest, PaperFigure4Parses) {
  auto Prog = parse(workload::Figure4Buggy);
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->getMain()->getNested().size(), 13u);
  EXPECT_TRUE(Prog->getMain()->findNested("sqrtest"));
  EXPECT_TRUE(Prog->getMain()->findNested("decrement")->isFunction());
}

TEST(ParserTest, PaperFigure2Parses) {
  auto Prog = parse(workload::Figure2);
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->getMain()->getLocals().size(), 5u);
}

TEST(ParserTest, PaperGotoProgramsParse) {
  EXPECT_TRUE(parse(workload::Section6GlobalGoto));
  EXPECT_TRUE(parse(workload::Section6LoopGoto));
}

TEST(ParserTest, RoundTripThroughPrettyPrinter) {
  auto Prog = parse(workload::Figure4Buggy);
  ASSERT_TRUE(Prog);
  std::string Printed = printProgram(*Prog);
  auto Reparsed = parse(Printed);
  ASSERT_TRUE(Reparsed) << Printed;
  EXPECT_EQ(printProgram(*Reparsed), Printed);
}

TEST(ParserTest, ErrorMissingSemicolon) {
  expectParseError("program p begin end.");
}

TEST(ParserTest, ErrorUnknownType) {
  expectParseError("program p; var x: floof; begin end.");
}

TEST(ParserTest, ErrorBadArrayBounds) {
  expectParseError("program p; var a: array[10..1] of integer; begin end.");
}

TEST(ParserTest, ErrorMissingEndDot) {
  expectParseError("program p; begin end");
}

TEST(ParserTest, ErrorDanglingExpression) {
  expectParseError("program p; var x: integer; begin x := ; end.");
}

TEST(ParserTest, EmptyStatementsAreTolerated) {
  auto Prog = parse("program p; var x: integer; begin ; x := 1; ; end.");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->getMain()->getBody()->getBody().size(), 1u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Constants and forward declarations (appended suite)
//===----------------------------------------------------------------------===//

namespace {

TEST(ParserTest, ConstantsSubstituteLiterals) {
  auto Prog = parse("program p;"
                    "const lim = 10; neg = -3; yes = true;"
                    "var x: integer; b: boolean;"
                    "begin x := lim + neg; b := yes; end.");
  ASSERT_TRUE(Prog);
  const auto *A = cast<AssignStmt>(Prog->getMain()->getBody()->getBody()[0].get());
  EXPECT_EQ(A->getValue()->str(), "10 + -3");
}

TEST(ParserTest, ConstantsAsArrayBounds) {
  auto Prog = parse("program p; const n = 5;"
                    "var a: array[1..n] of integer;"
                    "begin a[n] := 1; end.");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->getMain()->getLocals()[0]->getType()->getUpperBound(), 5);
}

TEST(ParserTest, ConstantsReferenceEarlierConstants) {
  auto Prog = parse("program p; const n = 4; m = n;"
                    "var x: integer; begin x := m; end.");
  ASSERT_TRUE(Prog);
  const auto *A = cast<AssignStmt>(Prog->getMain()->getBody()->getBody()[0].get());
  EXPECT_EQ(A->getValue()->str(), "4");
}

TEST(ParserTest, LocalVariablesShadowOuterConstants) {
  auto Prog = parse("program p; const n = 7;"
                    "procedure q; var n: integer;"
                    "begin n := 1; end;"
                    "var x: integer;"
                    "begin x := n; q; end.");
  ASSERT_TRUE(Prog);
  // Inside q, n is the local variable, so n := 1 must parse as assignment.
  RoutineDecl *Q = Prog->getMain()->findNested("q");
  EXPECT_EQ(Q->getBody()->getBody()[0]->getKind(), Stmt::Kind::Assign);
  // Outside, n is the constant 7.
  const auto *A = cast<AssignStmt>(Prog->getMain()->getBody()->getBody()[0].get());
  EXPECT_EQ(A->getValue()->str(), "7");
}

TEST(ParserTest, AssigningToConstantIsAnError) {
  expectParseError("program p; const n = 1; begin n := 2; end.");
}

TEST(ParserTest, ForwardDeclarationEnablesMutualRecursion) {
  auto Prog = parse(
      "program p; var r: integer;"
      "function isodd(n: integer): boolean; forward;"
      "function iseven(n: integer): boolean;"
      "begin if n = 0 then iseven := true else iseven := isodd(n - 1);"
      "end;"
      "function isodd(n: integer): boolean;"
      "begin if n = 0 then isodd := false else isodd := iseven(n - 1);"
      "end;"
      "begin if isodd(7) then r := 1 else r := 0; end.");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->getMain()->getNested().size(), 2u);
  EXPECT_TRUE(Prog->getMain()->findNested("isodd")->getBody());
}

TEST(ParserTest, ForwardDefinitionMayOmitParameters) {
  auto Prog = parse("program p; var r: integer;"
                    "procedure q(x: integer; var y: integer); forward;"
                    "procedure q;"
                    "begin y := x * 2; end;"
                    "begin q(21, r); end.");
  ASSERT_TRUE(Prog);
  RoutineDecl *Q = Prog->getMain()->findNested("q");
  ASSERT_EQ(Q->getParams().size(), 2u) << "heading inherited from forward";
}

TEST(ParserTest, UndefinedForwardIsAnError) {
  expectParseError("program p;"
                   "procedure q(x: integer); forward;"
                   "begin end.");
}

TEST(ParserTest, DuplicateForwardIsAnError) {
  expectParseError("program p;"
                   "procedure q; forward;"
                   "procedure q; forward;"
                   "begin end.");
}

TEST(ParserTest, ParamCountMismatchWithForwardIsAnError) {
  expectParseError("program p;"
                   "procedure q(x: integer); forward;"
                   "procedure q(x, y: integer); begin end;"
                   "begin end.");
}

} // namespace
