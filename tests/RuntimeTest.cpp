//===- RuntimeTest.cpp - Batch runtime & shared-cache concurrency tests ---===//
//
// The hardening layer for the parallel batch-debugging runtime:
//  - N sessions across 8 threads produce byte-identical results to serial
//    execution (same context wiring, same dialogue, same bug);
//  - cache hit/miss counters are exact (build-once semantics);
//  - results are deterministic across repeated runs with the same seed;
//  - sessions built from shared artifacts behave identically to sessions
//    that build everything themselves.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchRunner.h"

#include "core/ReferenceOracle.h"
#include "pascal/Frontend.h"
#include "support/Hashing.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::pascal;
using namespace gadt::runtime;
using namespace gadt::workload;

namespace {

std::unique_ptr<Program> compile(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

/// A mixed, seed-determined workload: chains, a call tree, random programs
/// and the paper's Figure 4 — every request pairs a buggy subject with its
/// intended program.
std::vector<SessionRequest> makeWorkload(unsigned N) {
  std::vector<ProgramPair> Pairs;
  for (unsigned K = 1; K <= 3; ++K)
    Pairs.push_back(chainProgram(6, K * 2));
  Pairs.push_back(treeProgram(3));
  for (uint32_t Seed : {3u, 8u}) {
    SyntheticOptions Opts;
    Opts.Seed = Seed;
    Opts.NumRoutines = 5;
    Pairs.push_back(randomProgram(Opts));
  }
  Pairs.push_back({Figure4Fixed, Figure4Buggy, "decrement"});

  std::vector<SessionRequest> Reqs;
  for (unsigned I = 0; I < N; ++I) {
    const ProgramPair &P = Pairs[I % Pairs.size()];
    SessionRequest R;
    R.Source = P.Buggy;
    R.Intended = P.Fixed;
    Reqs.push_back(std::move(R));
  }
  return Reqs;
}

std::vector<std::string> summaries(const std::vector<SessionResult> &Rs) {
  std::vector<std::string> Out;
  for (const SessionResult &R : Rs)
    Out.push_back(R.summary());
  return Out;
}

//===----------------------------------------------------------------------===//
// Parallel == serial, byte for byte
//===----------------------------------------------------------------------===//

TEST(BatchRunnerTest, EightThreadsByteIdenticalToSerial) {
  std::vector<SessionRequest> Reqs = makeWorkload(21);

  // Serial reference: one fresh context, the calling thread.
  RuntimeContext Serial;
  std::vector<std::string> Reference;
  for (const SessionRequest &R : Reqs)
    Reference.push_back(runSession(Serial, R).summary());

  // Parallel: fresh context, 8 workers.
  BatchRunner Runner(std::make_shared<RuntimeContext>(), {8});
  std::vector<SessionResult> Results = Runner.run(Reqs);

  ASSERT_EQ(Results.size(), Reqs.size());
  for (size_t I = 0; I < Results.size(); ++I) {
    EXPECT_TRUE(Results[I].Prepared) << Results[I].Message;
    EXPECT_EQ(Results[I].summary(), Reference[I]) << "request " << I;
  }
}

TEST(BatchRunnerTest, LocalizesThePlantedBugInParallel) {
  ProgramPair Chain = chainProgram(8, 5);
  std::vector<SessionRequest> Reqs(12);
  for (SessionRequest &R : Reqs) {
    R.Source = Chain.Buggy;
    R.Intended = Chain.Fixed;
  }
  BatchRunner Runner(std::make_shared<RuntimeContext>(), {8});
  for (const SessionResult &R : Runner.run(Reqs)) {
    ASSERT_TRUE(R.Found) << R.Message;
    EXPECT_EQ(R.UnitName, Chain.BuggyRoutine);
  }
}

//===----------------------------------------------------------------------===//
// Exact cache accounting
//===----------------------------------------------------------------------===//

TEST(BatchRunnerTest, CacheHitCountersAreExact) {
  ProgramPair Pair = chainProgram(6, 4);
  SessionRequest Req;
  Req.Source = Pair.Buggy;
  Req.Intended = Pair.Fixed;

  // One serial session establishes the per-session cache-access profile.
  auto Ctx = std::make_shared<RuntimeContext>();
  SessionResult First = runSession(*Ctx, Req);
  ASSERT_TRUE(First.Found);
  RuntimeStats S1 = Ctx->stats();
  EXPECT_EQ(S1.ProgramMisses, 2u) << "subject + intended parsed once each";
  EXPECT_EQ(S1.TransformMisses, 1u);
  EXPECT_EQ(S1.TransformHits, 0u);
  EXPECT_EQ(S1.SdgMisses, 1u);
  EXPECT_EQ(S1.Subjects, 1u);
  uint64_t SliceCallsPerSession = S1.SliceMisses + S1.SliceHits;

  // Eleven more identical sessions across 8 threads: every build is a hit,
  // no cache builds anything again.
  std::vector<SessionRequest> Reqs(11, Req);
  BatchRunner Runner(Ctx, {8});
  std::vector<SessionResult> Results = Runner.run(Reqs);
  for (const SessionResult &R : Results)
    EXPECT_EQ(R.summary(), First.summary());

  RuntimeStats S12 = Ctx->stats();
  EXPECT_EQ(S12.ProgramMisses, 2u);
  EXPECT_EQ(S12.ProgramHits, S1.ProgramHits + 22u);
  EXPECT_EQ(S12.TransformMisses, 1u);
  EXPECT_EQ(S12.TransformHits, 11u);
  EXPECT_EQ(S12.SdgMisses, 1u);
  EXPECT_EQ(S12.SdgHits, 11u);
  EXPECT_EQ(S12.SliceMisses, S1.SliceMisses)
      << "identical sessions never rebuild a slice";
  EXPECT_EQ(S12.SliceHits, S1.SliceHits + 11 * SliceCallsPerSession);
  EXPECT_EQ(S12.Subjects, 1u);
}

TEST(BatchRunnerTest, DistinctSubjectsGetDistinctEntries) {
  std::vector<SessionRequest> Reqs = makeWorkload(7); // 7 distinct pairs
  auto Ctx = std::make_shared<RuntimeContext>();
  BatchRunner Runner(Ctx, {4});
  Runner.run(Reqs);
  RuntimeStats S = Ctx->stats();
  EXPECT_EQ(S.Subjects, 7u);
  EXPECT_EQ(S.TransformMisses, 7u);
  EXPECT_EQ(S.TransformHits, 0u);
  EXPECT_EQ(S.ProgramMisses, 12u)
      << "7 subjects + 5 distinct intended programs (the three chain "
         "requests share one fixed program)";
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(BatchRunnerTest, RepeatedRunsWithSameSeedAreIdentical) {
  std::vector<SessionRequest> Reqs = makeWorkload(21);
  BatchRunner A(std::make_shared<RuntimeContext>(), {8});
  BatchRunner B(std::make_shared<RuntimeContext>(), {8});
  EXPECT_EQ(summaries(A.run(Reqs)), summaries(B.run(Reqs)));
}

TEST(BatchRunnerTest, WarmCacheChangesNothingButTheCounters) {
  std::vector<SessionRequest> Reqs = makeWorkload(14);
  auto Ctx = std::make_shared<RuntimeContext>();
  BatchRunner Runner(Ctx, {8});

  std::vector<std::string> Cold = summaries(Runner.run(Reqs));
  RuntimeStats AfterCold = Ctx->stats();

  std::vector<std::string> Warm = summaries(Runner.run(Reqs));
  RuntimeStats AfterWarm = Ctx->stats();

  EXPECT_EQ(Cold, Warm) << "warm-cache sessions localize the same bugs";
  EXPECT_EQ(AfterWarm.ProgramMisses, AfterCold.ProgramMisses);
  EXPECT_EQ(AfterWarm.TransformMisses, AfterCold.TransformMisses);
  EXPECT_EQ(AfterWarm.SdgMisses, AfterCold.SdgMisses);
  EXPECT_EQ(AfterWarm.SliceMisses, AfterCold.SliceMisses);
}

//===----------------------------------------------------------------------===//
// Pool mechanics
//===----------------------------------------------------------------------===//

TEST(BatchRunnerTest, EmptyBatchAndOverProvisionedPool) {
  BatchRunner Runner(std::make_shared<RuntimeContext>(), {8});
  EXPECT_TRUE(Runner.run({}).empty());
  // 2 requests across 8 threads: the idle workers must not deadlock.
  std::vector<SessionRequest> Reqs = makeWorkload(2);
  EXPECT_EQ(Runner.run(Reqs).size(), 2u);
  EXPECT_EQ(Runner.threadCount(), 8u);
}

TEST(BatchRunnerTest, BadSubjectReportsFailureWithoutPoisoningTheBatch) {
  std::vector<SessionRequest> Reqs = makeWorkload(4);
  Reqs[1].Source = "program broken; begin x := ; end.";
  Reqs[2].MakeOracle = nullptr;
  Reqs[2].Intended.clear(); // no oracle at all
  BatchRunner Runner(std::make_shared<RuntimeContext>(), {4});
  std::vector<SessionResult> Results = Runner.run(Reqs);
  EXPECT_TRUE(Results[0].Prepared);
  EXPECT_FALSE(Results[1].Prepared);
  EXPECT_NE(Results[1].Message.find("parse failure"), std::string::npos)
      << Results[1].Message;
  EXPECT_FALSE(Results[2].Prepared);
  EXPECT_NE(Results[2].Message.find("no oracle"), std::string::npos);
  EXPECT_TRUE(Results[3].Prepared);
}

//===----------------------------------------------------------------------===//
// Artifact injection vs. self-built sessions
//===----------------------------------------------------------------------===//

TEST(RuntimeContextTest, ArtifactSessionMatchesSelfBuiltSession) {
  auto Buggy = compile(Figure4Buggy);
  auto Fixed = compile(Figure4Fixed);

  DiagnosticsEngine D1;
  GADTSession Direct(*Buggy, GADTOptions(), D1);
  ASSERT_TRUE(Direct.valid());
  IntendedProgramOracle U1(*Fixed);
  BugReport R1 = Direct.debug(U1);

  RuntimeContext Ctx;
  DiagnosticsEngine D2;
  auto Artifacts = Ctx.prepare(Figure4Buggy, GADTOptions(), D2);
  ASSERT_TRUE(Artifacts) << D2.str();
  EXPECT_EQ(Artifacts->Fingerprint, hashProgram(*Buggy));
  ASSERT_TRUE(Artifacts->Sdg) << "static slicing is on by default";
  GADTSession Injected(Artifacts, GADTOptions(), D2);
  ASSERT_TRUE(Injected.valid()) << D2.str();
  IntendedProgramOracle U2(*Fixed);
  BugReport R2 = Injected.debug(U2);

  ASSERT_TRUE(R1.Found && R2.Found);
  EXPECT_EQ(R1.UnitName, R2.UnitName);
  EXPECT_EQ(R1.WrongOutput, R2.WrongOutput);
  EXPECT_EQ(R1.Message, R2.Message);
  EXPECT_EQ(R1.CandidateStmts.size(), R2.CandidateStmts.size());
  EXPECT_EQ(Direct.stats().transcript(), Injected.stats().transcript())
      << "the shared slice memo must not change the dialogue";
  EXPECT_EQ(Direct.stats().NodesPruned, Injected.stats().NodesPruned);
}

TEST(RuntimeContextTest, TransformArtifactsAreShared) {
  RuntimeContext Ctx;
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  auto A1 = Ctx.prepare(Section6Globals, Opts, Diags);
  auto A2 = Ctx.prepare(Section6Globals, Opts, Diags);
  ASSERT_TRUE(A1 && A2);
  EXPECT_EQ(A1->Prepared.get(), A2->Prepared.get())
      << "one transformed program object per fingerprint";
  EXPECT_EQ(A1->Sdg.get(), A2->Sdg.get());
  EXPECT_EQ(Ctx.stats().TransformMisses, 1u);
  EXPECT_EQ(Ctx.stats().TransformHits, 1u);
}

TEST(RuntimeContextTest, TextualVariantsShareOneFingerprint) {
  // Same program, different whitespace/case: two parses, one fingerprint,
  // one transform, one SDG — and both artifact sets debug the same object.
  std::string A = "program p; var x: integer; begin x := 1; end.";
  std::string B = "program P;\n var X: integer;\nbegin\n  X := 1;\nend.";
  RuntimeContext Ctx;
  DiagnosticsEngine Diags;
  auto AA = Ctx.prepare(A, GADTOptions(), Diags);
  auto AB = Ctx.prepare(B, GADTOptions(), Diags);
  ASSERT_TRUE(AA && AB);
  EXPECT_EQ(AA->Fingerprint, AB->Fingerprint);
  EXPECT_EQ(AA->Prepared.get(), AB->Prepared.get());
  EXPECT_EQ(Ctx.stats().ProgramMisses, 2u);
  EXPECT_EQ(Ctx.stats().TransformMisses, 1u);
  EXPECT_EQ(Ctx.stats().SdgMisses, 1u);
}

TEST(RuntimeContextTest, CachedParseFailureIsReported) {
  RuntimeContext Ctx;
  DiagnosticsEngine D1, D2;
  EXPECT_EQ(Ctx.internProgram("program x; begin := end.", D1), nullptr);
  EXPECT_TRUE(D1.hasErrors());
  // Second request hits the cached failure, still reporting an error.
  EXPECT_EQ(Ctx.internProgram("program x; begin := end.", D2), nullptr);
  EXPECT_TRUE(D2.hasErrors());
  EXPECT_EQ(Ctx.stats().ProgramMisses, 1u);
  EXPECT_EQ(Ctx.stats().ProgramHits, 1u);
}

//===----------------------------------------------------------------------===//
// Cache byte budget
//===----------------------------------------------------------------------===//

TEST(RuntimeContextTest, CacheBudgetEvictsOldestEntriesGlobally) {
  // Feed one context many distinct subjects under a budget far smaller than
  // their summed footprint: it must evict (counter moves) and the occupancy
  // gauges must settle at or under the budget. An unlimited control context
  // over the same workload never evicts.
  std::vector<std::string> Sources;
  for (unsigned N = 4; N <= 9; ++N)
    Sources.push_back(chainProgram(N, 1).Buggy);

  obs::Registry Limited, Unlimited;
  RuntimeOptions Budgeted;
  Budgeted.CacheBudgetBytes = 4 * 1024;
  RuntimeContext Small(&Limited, Budgeted);
  RuntimeContext Big(&Unlimited);

  for (const std::string &Src : Sources) {
    DiagnosticsEngine D1, D2;
    ASSERT_TRUE(Small.prepare(Src, GADTOptions(), D1)) << D1.str();
    ASSERT_TRUE(Big.prepare(Src, GADTOptions(), D2)) << D2.str();
  }

  EXPECT_GT(Limited.counter("runtime.cache.evictions").value(), 0u);
  EXPECT_EQ(Unlimited.counter("runtime.cache.evictions").value(), 0u);

  int64_t Resident = 0;
  for (const char *Cache :
       {"program", "transform", "sdg", "code", "slice"})
    Resident += Limited.gauge(std::string("runtime.cache.") + Cache +
                              ".bytes")
                    .value();
  EXPECT_LE(Resident, static_cast<int64_t>(Budgeted.CacheBudgetBytes));

  // Eviction only drops the cache's reference; re-preparing an evicted
  // subject rebuilds it and still succeeds.
  DiagnosticsEngine D;
  ASSERT_TRUE(Small.prepare(Sources.front(), GADTOptions(), D)) << D.str();
}

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

TEST(HashingTest, ProgramFingerprintIsStableAndDiscriminating) {
  auto P1 = compile(Figure4Buggy);
  auto P2 = compile(Figure4Buggy);
  auto P3 = compile(Figure4Fixed);
  EXPECT_EQ(hashProgram(*P1), hashProgram(*P2))
      << "same source, separate parses: same fingerprint";
  EXPECT_NE(hashProgram(*P1), hashProgram(*P3));
  EXPECT_EQ(hashBytes("gadt"), hashBytes("gadt"));
  EXPECT_NE(hashBytes("gadt"), hashBytes("gadT"));
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_EQ(hashHex(0).size(), 16u);
  EXPECT_EQ(hashHex(0xabcULL), "0000000000000abc");
}

} // namespace
