//===- GoldenDifferentialTest.cpp - Interpreter golden differential -------===//
//
// Pins the interpreter's observable behaviour byte-for-byte: for every
// sample program and every interpreter flag combination (TraceLoops x
// TraceIterations x TrackDeps x DetectUninitialized), the ExecResult
// (output, final globals, steps, unit count), the serialized execution
// tree, and every dynamic slice must match a committed golden file.
//
// The goldens were generated from the pre-overhaul (PR 2) interpreter, so
// any storage/dependence-substrate rework that changes observable
// behaviour — binding names, binding order, tree shape, slice contents —
// fails here, not in production.
//
// Regenerate (after an *intentional* behaviour change) with:
//   GADT_REGEN_GOLDEN=1 ./test_golden
//
// A second obligation rides along: running with and without a listener
// must produce the same ExecResult. The hot path elides binding/name
// construction when no listener is attached, and this proves the elision
// is unobservable.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "pascal/Frontend.h"
#include "slicing/DynamicSlicer.h"
#include "trace/ExecTreeBuilder.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace gadt;
using namespace gadt::interp;

namespace {

namespace fs = std::filesystem;

#ifndef GADT_SAMPLES_DIR
#error "GADT_SAMPLES_DIR must be defined by the build"
#endif
#ifndef GADT_GOLDEN_DIR
#error "GADT_GOLDEN_DIR must be defined by the build"
#endif

/// Deterministic program input, long enough for every sample; reads past
/// the end are themselves deterministic (a runtime error in the golden).
std::vector<int64_t> sampleInput() {
  return {3, 7, 2, 9, 4, 1, 8, 5, 6, 10, 11, 13, 12, 15, 14, 17};
}

std::string escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\n')
      Out += "\\n";
    else if (C == '\\')
      Out += "\\\\";
    else
      Out += C;
  }
  return Out;
}

/// Renders one (program, options) execution: result, tree, slices.
std::string renderRun(const pascal::Program &Prog, const InterpOptions &Opts) {
  Interpreter I(Prog, Opts);
  I.setInput(sampleInput());
  trace::ExecTreeBuilder Builder;
  I.setListener(&Builder);
  ExecResult R = I.run();
  auto Tree = Builder.takeTree();

  std::ostringstream Out;
  Out << "ok: " << (R.Ok ? 1 : 0) << "\n";
  if (!R.Ok)
    Out << "error: " << R.Error.Loc.Line << ":" << R.Error.Loc.Column << " "
        << escapeLine(R.Error.Message) << "\n";
  Out << "output: " << escapeLine(R.Output) << "\n";
  Out << "steps: " << R.Steps << "\n";
  Out << "units: " << R.UnitsExecuted << "\n";
  for (const Binding &B : R.FinalGlobals)
    Out << "global " << B.Name << " = " << B.V.str() << "\n";
  Out << "tree:\n" << (Tree && Tree->getRoot() ? Tree->str() : "<none>\n");

  if (Opts.TrackDeps && Tree && Tree->getRoot()) {
    Out << "slices:\n";
    for (uint32_t Id = 1; Id <= R.UnitsExecuted; ++Id) {
      const trace::ExecNode *N = Tree->node(Id);
      if (!N)
        continue;
      for (const Binding &B : N->getOutputs()) {
        auto Kept = slicing::dynamicSlice(N, B.Name);
        Out << "slice " << Id << "." << B.Name << ":";
        for (uint32_t K : Kept.ids())
          Out << " " << K;
        Out << "\n";
      }
    }
  }
  return Out.str();
}

/// Full golden document for one sample: all 16 flag combinations.
std::string renderSample(const pascal::Program &Prog) {
  std::ostringstream Out;
  for (int Mask = 0; Mask < 16; ++Mask) {
    InterpOptions Opts;
    Opts.TraceLoops = (Mask & 1) != 0;
    Opts.TraceIterations = (Mask & 2) != 0;
    Opts.TrackDeps = (Mask & 4) != 0;
    Opts.DetectUninitialized = (Mask & 8) != 0;
    Out << "== combo loops=" << Opts.TraceLoops
        << " iters=" << Opts.TraceIterations << " deps=" << Opts.TrackDeps
        << " strict=" << Opts.DetectUninitialized << "\n";
    Out << renderRun(Prog, Opts);
  }
  return Out.str();
}

std::vector<fs::path> samplePrograms() {
  std::vector<fs::path> Paths;
  for (const auto &Entry : fs::directory_iterator(GADT_SAMPLES_DIR))
    if (Entry.path().extension() == ".pas")
      Paths.push_back(Entry.path());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

std::unique_ptr<pascal::Program> compileFile(const fs::path &Path) {
  std::ifstream In(Path);
  std::stringstream Src;
  Src << In.rdbuf();
  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Src.str(), Diags);
  EXPECT_TRUE(Prog != nullptr) << Path << ": " << Diags.str();
  return Prog;
}

class GoldenDifferential : public ::testing::TestWithParam<fs::path> {};

TEST_P(GoldenDifferential, MatchesCommittedGolden) {
  const fs::path &Sample = GetParam();
  auto Prog = compileFile(Sample);
  ASSERT_TRUE(Prog);

  std::string Actual = renderSample(*Prog);
  fs::path GoldenPath =
      fs::path(GADT_GOLDEN_DIR) / (Sample.stem().string() + ".golden");

  if (std::getenv("GADT_REGEN_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    Out << Actual;
    GTEST_SKIP() << "regenerated " << GoldenPath;
  }

  std::ifstream In(GoldenPath);
  ASSERT_TRUE(In.good()) << "missing golden " << GoldenPath
                         << " (run with GADT_REGEN_GOLDEN=1 to create)";
  std::stringstream Expected;
  Expected << In.rdbuf();
  // Compare line-by-line for a readable first-divergence message, then the
  // whole document to catch length differences.
  std::istringstream ActualS(Actual), ExpectedS(Expected.str());
  std::string AL, EL;
  unsigned Line = 0;
  while (std::getline(ExpectedS, EL)) {
    ++Line;
    ASSERT_TRUE(std::getline(ActualS, AL))
        << Sample.stem() << ": output truncated at golden line " << Line;
    ASSERT_EQ(AL, EL) << Sample.stem() << ": first divergence at line "
                      << Line;
  }
  EXPECT_EQ(Actual, Expected.str()) << Sample.stem() << ": trailing output";
}

/// The no-listener fast path must be unobservable in the ExecResult.
TEST_P(GoldenDifferential, ListenerDoesNotChangeExecResult) {
  auto Prog = compileFile(GetParam());
  ASSERT_TRUE(Prog);
  for (int Mask = 0; Mask < 16; ++Mask) {
    InterpOptions Opts;
    Opts.TraceLoops = (Mask & 1) != 0;
    Opts.TraceIterations = (Mask & 2) != 0;
    Opts.TrackDeps = (Mask & 4) != 0;
    Opts.DetectUninitialized = (Mask & 8) != 0;

    Interpreter WithL(*Prog, Opts);
    WithL.setInput(sampleInput());
    trace::ExecTreeBuilder Builder;
    WithL.setListener(&Builder);
    ExecResult A = WithL.run();
    (void)Builder.takeTree();

    Interpreter NoL(*Prog, Opts);
    NoL.setInput(sampleInput());
    ExecResult B = NoL.run();

    EXPECT_EQ(A.Ok, B.Ok) << "mask " << Mask;
    EXPECT_EQ(A.Output, B.Output) << "mask " << Mask;
    EXPECT_EQ(A.Steps, B.Steps) << "mask " << Mask;
    EXPECT_EQ(A.UnitsExecuted, B.UnitsExecuted) << "mask " << Mask;
    EXPECT_EQ(A.Error.Message, B.Error.Message) << "mask " << Mask;
    ASSERT_EQ(A.FinalGlobals.size(), B.FinalGlobals.size()) << "mask " << Mask;
    for (size_t I = 0; I < A.FinalGlobals.size(); ++I) {
      EXPECT_EQ(A.FinalGlobals[I].Name, B.FinalGlobals[I].Name);
      EXPECT_TRUE(A.FinalGlobals[I].V.equals(B.FinalGlobals[I].V))
          << "mask " << Mask << " global " << A.FinalGlobals[I].Name;
    }
  }
}

std::string sampleName(const ::testing::TestParamInfo<fs::path> &Info) {
  std::string Name = Info.param.stem().string();
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Samples, GoldenDifferential,
                         ::testing::ValuesIn(samplePrograms()), sampleName);

} // namespace
