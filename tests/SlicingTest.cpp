//===- SlicingTest.cpp - Static/dynamic slicing tests (Figures 2, 8, 9) ---===//

#include "slicing/DynamicSlicer.h"
#include "slicing/ProgramProjection.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"

#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::slicing;
using namespace gadt::trace;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

ExecNode *findNode(ExecTree &T, const std::string &Name) {
  ExecNode *Found = nullptr;
  T.forEachNode([&](ExecNode *N) {
    if (!Found && N->getName() == Name)
      Found = N;
  });
  return Found;
}

//===----------------------------------------------------------------------===//
// Figure 2: classic Weiser slice + projection
//===----------------------------------------------------------------------===//

TEST(StaticSliceTest, Figure2SliceOnMul) {
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  StaticSlice Slice = sliceOnProgramVar(G, *Prog, "mul");
  ASSERT_GT(Slice.size(), 0u);

  const auto &Body = Prog->getMain()->getBody()->getBody();
  // read(x,y); mul := 0; sum := 0; if ...
  EXPECT_TRUE(Slice.containsStmt(Body[0].get())) << "read(x, y) stays";
  EXPECT_TRUE(Slice.containsStmt(Body[1].get())) << "mul := 0 stays";
  EXPECT_FALSE(Slice.containsStmt(Body[2].get())) << "sum := 0 goes";
  const auto *If = cast<IfStmt>(Body[3].get());
  EXPECT_TRUE(Slice.containsStmt(If)) << "the predicate stays";
  EXPECT_FALSE(Slice.containsStmt(If->getThen())) << "sum := x + y goes";
  const auto *Else = cast<CompoundStmt>(If->getElse());
  EXPECT_FALSE(Slice.containsStmt(Else->getBody()[0].get()))
      << "read(z) goes";
  EXPECT_TRUE(Slice.containsStmt(Else->getBody()[1].get()))
      << "mul := x * y stays";
}

TEST(StaticSliceTest, Figure2ProjectionMatchesPaper) {
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  StaticSlice Slice = sliceOnProgramVar(G, *Prog, "mul");
  DiagnosticsEngine Diags;
  auto Projected = projectSlice(*Prog, Slice, Diags);
  ASSERT_TRUE(Projected) << Diags.str();
  std::string Src = printProgram(*Projected);
  // The paper's Figure 2(b): x, y, mul declared; z and sum gone.
  EXPECT_NE(Src.find("x: integer"), std::string::npos) << Src;
  EXPECT_NE(Src.find("mul: integer"), std::string::npos) << Src;
  EXPECT_EQ(Src.find("sum"), std::string::npos) << Src;
  EXPECT_EQ(Src.find("z:"), std::string::npos) << Src;
  EXPECT_NE(Src.find("mul := x * y"), std::string::npos) << Src;
  EXPECT_NE(Src.find("if x <= 1"), std::string::npos) << Src;
}

TEST(StaticSliceTest, Figure2ProjectionPreservesCriterionBehaviour) {
  // The slice must compute the same value of mul as the original for any
  // input (Weiser's correctness property), including both branch outcomes.
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  StaticSlice Slice = sliceOnProgramVar(G, *Prog, "mul");
  DiagnosticsEngine Diags;
  auto Projected = projectSlice(*Prog, Slice, Diags);
  ASSERT_TRUE(Projected);
  for (std::vector<int64_t> Input :
       {std::vector<int64_t>{0, 5, 7}, std::vector<int64_t>{3, 4, 9}}) {
    Interpreter Orig(*Prog);
    Orig.setInput(Input);
    auto RO = Orig.run();
    ASSERT_TRUE(RO.Ok) << RO.Error.Message;
    Interpreter Sliced(*Projected);
    Sliced.setInput(Input);
    auto RS = Sliced.run();
    ASSERT_TRUE(RS.Ok) << RS.Error.Message;
    auto MulOf = [](const ExecResult &R) {
      for (const Binding &B : R.FinalGlobals)
        if (B.Name == "mul")
          return B.V.asInt();
      return int64_t(-999);
    };
    EXPECT_EQ(MulOf(RO), MulOf(RS));
  }
}

TEST(StaticSliceTest, SliceOnSumKeepsOtherBranch) {
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  StaticSlice Slice = sliceOnProgramVar(G, *Prog, "sum");
  const auto &Body = Prog->getMain()->getBody()->getBody();
  EXPECT_TRUE(Slice.containsStmt(Body[2].get())) << "sum := 0 stays";
  const auto *If = cast<IfStmt>(Body[3].get());
  EXPECT_TRUE(Slice.containsStmt(If->getThen())) << "sum := x + y stays";
  const auto *Else = cast<CompoundStmt>(If->getElse());
  EXPECT_FALSE(Slice.containsStmt(Else->getBody()[1].get()))
      << "mul := x * y goes";
}

TEST(StaticSliceTest, EmptyCriterionYieldsEmptySlice) {
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  StaticSlice Slice = sliceOnProgramVar(G, *Prog, "nosuchvar");
  EXPECT_EQ(Slice.size(), 0u);
}

//===----------------------------------------------------------------------===//
// Interprocedural slicing on Figure 4
//===----------------------------------------------------------------------===//

TEST(StaticSliceTest, Figure4SliceOnR1ExcludesComput2) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  const RoutineDecl *Computs = Prog->getMain()->findNested("computs");
  StaticSlice Slice = sliceOnRoutineOutput(G, Computs, "r1");
  ASSERT_GT(Slice.size(), 0u);
  EXPECT_TRUE(Slice.containsRoutine(Prog->getMain()->findNested("comput1")));
  EXPECT_TRUE(Slice.containsRoutine(Prog->getMain()->findNested("sum1")));
  EXPECT_TRUE(Slice.containsRoutine(Prog->getMain()->findNested("sum2")));
  EXPECT_TRUE(Slice.containsRoutine(Prog->getMain()->findNested("add")));
  EXPECT_TRUE(
      Slice.containsRoutine(Prog->getMain()->findNested("decrement")));
  // comput2/square only affect r2.
  const RoutineDecl *Comput2 = Prog->getMain()->findNested("comput2");
  const auto *Comput2Call =
      cast<ProcCallStmt>(Computs->getBody()->getBody()[1].get());
  EXPECT_EQ(Comput2Call->getCallee(), Comput2);
  EXPECT_FALSE(Slice.containsStmt(Comput2Call));
}

TEST(StaticSliceTest, Figure4SliceOnS2ExcludesSum1) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  const RoutineDecl *Partialsums = Prog->getMain()->findNested("partialsums");
  StaticSlice Slice = sliceOnRoutineOutput(G, Partialsums, "s2");
  const auto &Body = Partialsums->getBody()->getBody();
  EXPECT_FALSE(Slice.containsStmt(Body[0].get())) << "sum1 call goes";
  EXPECT_TRUE(Slice.containsStmt(Body[1].get())) << "sum2 call stays";
  EXPECT_TRUE(Slice.containsRoutine(Prog->getMain()->findNested("decrement")));
}

TEST(StaticSliceTest, SliceOnFunctionResult) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  const RoutineDecl *Dec = Prog->getMain()->findNested("decrement");
  StaticSlice Slice = sliceOnRoutineOutput(G, Dec, "decrement");
  EXPECT_GT(Slice.size(), 0u);
  EXPECT_TRUE(Slice.containsStmt(Dec->getBody()->getBody()[0].get()));
}

//===----------------------------------------------------------------------===//
// Execution-tree pruning: Figures 8 and 9
//===----------------------------------------------------------------------===//

struct Fig4Trace {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<SDG> G;
  std::unique_ptr<ExecTree> Tree;

  explicit Fig4Trace(bool TrackDeps = false) {
    Prog = compile(workload::Figure4Buggy);
    G = std::make_unique<SDG>(*Prog);
    InterpOptions Opts;
    Opts.TrackDeps = TrackDeps;
    ExecResult Res;
    Tree = buildExecTree(*Prog, Opts, {}, &Res);
    EXPECT_TRUE(Res.Ok) << Res.Error.Message;
  }
};

TEST(TreePrunerTest, Figure8PrunedTree) {
  Fig4Trace F;
  ExecNode *Computs = findNode(*F.Tree, "computs");
  ASSERT_TRUE(Computs);
  StaticSlice Slice = sliceOnRoutineOutput(
      *F.G, F.Prog->getMain()->findNested("computs"), "r1");
  auto Kept = pruneByStaticSlice(Computs, Slice);

  const char *Expected =
      R"(computs(In y: 3, Out r1: 12, Out r2: 9)
  comput1(In y: 3, Out r1: 12)
    partialsums(In y: 3, Out s1: 6, Out s2: 6)
      sum1(In y: 3, Out s1: 6)
        increment(In y: 3)=4
      sum2(In y: 3, Out s2: 6)
        decrement(In y: 3)=4
    add(In s1: 6, In s2: 6, Out r1: 12)
)";
  EXPECT_EQ(renderPruned(Computs, Kept), Expected);
  EXPECT_EQ(countRetained(Computs, Kept), 8u);
}

TEST(TreePrunerTest, Figure9PrunedTree) {
  Fig4Trace F;
  ExecNode *Partialsums = findNode(*F.Tree, "partialsums");
  ASSERT_TRUE(Partialsums);
  StaticSlice Slice = sliceOnRoutineOutput(
      *F.G, F.Prog->getMain()->findNested("partialsums"), "s2");
  auto Kept = pruneByStaticSlice(Partialsums, Slice);

  const char *Expected =
      R"(partialsums(In y: 3, Out s1: 6, Out s2: 6)
  sum2(In y: 3, Out s2: 6)
    decrement(In y: 3)=4
)";
  EXPECT_EQ(renderPruned(Partialsums, Kept), Expected);
  EXPECT_EQ(countRetained(Partialsums, Kept), 3u);
}

TEST(TreePrunerTest, PruningNeverDropsTheCriterionNode) {
  Fig4Trace F;
  ExecNode *Test = findNode(*F.Tree, "test");
  ASSERT_TRUE(Test);
  StaticSlice Empty;
  auto Kept = pruneByStaticSlice(Test, Empty);
  EXPECT_EQ(Kept.size(), 1u);
  EXPECT_TRUE(Kept.count(Test->getId()));
}

TEST(TreePrunerTest, RootOnlyRetentionRendersJustTheRoot) {
  Fig4Trace F;
  ExecNode *Computs = findNode(*F.Tree, "computs");
  ASSERT_TRUE(Computs);
  StaticSlice Empty;
  auto Kept = pruneByStaticSlice(Computs, Empty);
  EXPECT_EQ(countRetained(Computs, Kept), 1u);
  EXPECT_EQ(renderPruned(Computs, Kept),
            "computs(In y: 3, Out r1: 12, Out r2: 9)\n");
  // The set only speaks for Computs' subtree: counting from another root
  // that is not retained yields zero.
  ExecNode *Test = findNode(*F.Tree, "test");
  ASSERT_TRUE(Test);
  EXPECT_EQ(countRetained(Test, Kept), 0u);
}

TEST(TreePrunerTest, LoopNodeOutsideSliceDropsItsSubtree) {
  // The for-loop (and the calls made inside it) only affects u; a slice on
  // v must discard the loop unit together with everything under it.
  auto Prog = compile(
      "program p; var a, b, i: integer;"
      "function inc(x: integer): integer; begin inc := x + 1; end;"
      "procedure work(var u, v: integer);"
      "begin u := 0; for i := 1 to 3 do u := inc(u); v := 5; end;"
      "begin work(a, b); end.");
  SDG G(*Prog);
  InterpOptions Opts;
  Opts.TraceLoops = true;
  ExecResult Res;
  auto Tree = buildExecTree(*Prog, Opts, {}, &Res);
  ASSERT_TRUE(Res.Ok) << Res.Error.Message;
  ExecNode *Work = findNode(*Tree, "work");
  ASSERT_TRUE(Work);
  ExecNode *Loop = findNode(*Tree, "work.for#1");
  ASSERT_TRUE(Loop);
  EXPECT_EQ(Loop->getChildren().size(), 3u); // the three inc calls

  StaticSlice OnV = sliceOnRoutineOutput(
      G, Prog->getMain()->findNested("work"), "v");
  ASSERT_GT(OnV.size(), 0u);
  auto Kept = pruneByStaticSlice(Work, OnV);
  EXPECT_TRUE(Kept.count(Work->getId()));
  EXPECT_FALSE(Kept.count(Loop->getId()));
  for (const ExecNode *Inc : Loop->getChildren())
    EXPECT_FALSE(Kept.count(Inc->getId()))
        << "discarded loop must take its calls with it";
  EXPECT_EQ(countRetained(Work, Kept), 1u);

  // A slice on u keeps the loop and the calls.
  StaticSlice OnU = sliceOnRoutineOutput(
      G, Prog->getMain()->findNested("work"), "u");
  auto KeptU = pruneByStaticSlice(Work, OnU);
  EXPECT_TRUE(KeptU.count(Loop->getId()));
  EXPECT_EQ(countRetained(Work, KeptU), 5u);
}

TEST(TreePrunerTest, ReslicingPrunedTreeIntersectsRetainedSets) {
  // Debugger-style re-slicing: prune at computs on r1, then — inside the
  // already-pruned tree — prune at partialsums on s2 and intersect within
  // that subtree's interval. Successive slices only ever shrink the set.
  Fig4Trace F;
  ExecNode *Computs = findNode(*F.Tree, "computs");
  ExecNode *Partialsums = findNode(*F.Tree, "partialsums");
  ASSERT_TRUE(Computs && Partialsums);

  auto Active = pruneByStaticSlice(
      Computs, sliceOnRoutineOutput(
                   *F.G, F.Prog->getMain()->findNested("computs"), "r1"));
  ASSERT_EQ(countRetained(Computs, Active), 8u);

  auto Second = pruneByStaticSlice(
      Partialsums,
      sliceOnRoutineOutput(
          *F.G, F.Prog->getMain()->findNested("partialsums"), "s2"));
  Active.intersectRangeWith(Second, Partialsums->getId(),
                            Partialsums->subtreeEnd());

  // sum1 and increment drop out of partialsums; the rest is untouched.
  EXPECT_EQ(countRetained(Partialsums, Active), 3u);
  EXPECT_EQ(countRetained(Computs, Active), 6u);
  const char *Expected =
      R"(computs(In y: 3, Out r1: 12, Out r2: 9)
  comput1(In y: 3, Out r1: 12)
    partialsums(In y: 3, Out s1: 6, Out s2: 6)
      sum2(In y: 3, Out s2: 6)
        decrement(In y: 3)=4
    add(In s1: 6, In s2: 6, Out r1: 12)
)";
  EXPECT_EQ(renderPruned(Computs, Active), Expected);
}

//===----------------------------------------------------------------------===//
// Dynamic slicing
//===----------------------------------------------------------------------===//

TEST(DynamicSliceTest, Figure8DynamicMatchesStatic) {
  Fig4Trace F(/*TrackDeps=*/true);
  ExecNode *Computs = findNode(*F.Tree, "computs");
  ASSERT_TRUE(Computs);
  auto Kept = dynamicSlice(Computs, "r1");
  const char *Expected =
      R"(computs(In y: 3, Out r1: 12, Out r2: 9)
  comput1(In y: 3, Out r1: 12)
    partialsums(In y: 3, Out s1: 6, Out s2: 6)
      sum1(In y: 3, Out s1: 6)
        increment(In y: 3)=4
      sum2(In y: 3, Out s2: 6)
        decrement(In y: 3)=4
    add(In s1: 6, In s2: 6, Out r1: 12)
)";
  EXPECT_EQ(renderPruned(Computs, Kept), Expected);
}

TEST(DynamicSliceTest, Figure9DynamicMatchesStatic) {
  Fig4Trace F(/*TrackDeps=*/true);
  ExecNode *Partialsums = findNode(*F.Tree, "partialsums");
  ASSERT_TRUE(Partialsums);
  auto Kept = dynamicSlice(Partialsums, "s2");
  EXPECT_EQ(countRetained(Partialsums, Kept), 3u);
}

TEST(DynamicSliceTest, BranchNotExecutedIsExcluded) {
  // Static slicing keeps both branches; dynamic slicing keeps only what
  // actually ran.
  auto Prog = compile(
      "program p; var x, r: integer;"
      "function f(a: integer): integer; begin f := a + 1; end;"
      "function g(a: integer): integer; begin g := a + 2; end;"
      "procedure pick(sel: integer; var out1: integer);"
      "begin if sel > 0 then out1 := f(sel) else out1 := g(sel); end;"
      "begin x := 5; pick(x, r); end.");
  InterpOptions Opts;
  Opts.TrackDeps = true;
  ExecResult Res;
  auto Tree = buildExecTree(*Prog, Opts, {}, &Res);
  ASSERT_TRUE(Res.Ok);
  ExecNode *Pick = findNode(*Tree, "pick");
  ASSERT_TRUE(Pick);
  auto Kept = dynamicSlice(Pick, "out1");
  // f executed and is relevant; g never ran, so it cannot appear.
  ExecNode *FNode = findNode(*Tree, "f");
  ASSERT_TRUE(FNode);
  EXPECT_TRUE(Kept.count(FNode->getId()));
  EXPECT_EQ(findNode(*Tree, "g"), nullptr);
}

TEST(DynamicSliceTest, IrrelevantSiblingCallExcluded) {
  auto Prog = compile(
      "program p; var a, b: integer;"
      "procedure one(var v: integer); begin v := 1; end;"
      "procedure two(var v: integer); begin v := 2; end;"
      "procedure driver(var x, y: integer); begin one(x); two(y); end;"
      "begin driver(a, b); end.");
  InterpOptions Opts;
  Opts.TrackDeps = true;
  ExecResult Res;
  auto Tree = buildExecTree(*Prog, Opts, {}, &Res);
  ASSERT_TRUE(Res.Ok);
  ExecNode *Driver = findNode(*Tree, "driver");
  auto Kept = dynamicSlice(Driver, "y");
  EXPECT_TRUE(Kept.count(findNode(*Tree, "two")->getId()));
  EXPECT_FALSE(Kept.count(findNode(*Tree, "one")->getId()));
}

TEST(DynamicSliceTest, ControlDependenceIsTracked) {
  // cond() decides whether out gets set by f: f's output is control
  // dependent on cond's result, so cond must be in the dynamic slice.
  auto Prog = compile(
      "program p; var r: integer;"
      "function cond(x: integer): boolean; begin cond := x > 0; end;"
      "function f(a: integer): integer; begin f := a * 2; end;"
      "procedure driver(var out1: integer);"
      "begin out1 := 0; if cond(3) then out1 := f(7); end;"
      "begin driver(r); end.");
  InterpOptions Opts;
  Opts.TrackDeps = true;
  ExecResult Res;
  auto Tree = buildExecTree(*Prog, Opts, {}, &Res);
  ASSERT_TRUE(Res.Ok);
  ExecNode *Driver = findNode(*Tree, "driver");
  auto Kept = dynamicSlice(Driver, "out1");
  EXPECT_TRUE(Kept.count(findNode(*Tree, "cond")->getId()));
  EXPECT_TRUE(Kept.count(findNode(*Tree, "f")->getId()));
}

TEST(DynamicSliceTest, WithoutTrackingOnlyCriterionRemains) {
  Fig4Trace F(/*TrackDeps=*/false);
  ExecNode *Computs = findNode(*F.Tree, "computs");
  auto Kept = dynamicSlice(Computs, "r1");
  EXPECT_EQ(Kept.size(), 1u);
}

//===----------------------------------------------------------------------===//
// dynamicSlice edge cases (hand-built trees)
//===----------------------------------------------------------------------===//

/// Hand-builds a tree by replaying enter/exit events: \p Parents[i] is the
/// parent id of node i+1 (0 for the root). Children must follow parents in
/// id (preorder) order, as the interpreter emits them.
std::unique_ptr<ExecTree>
syntheticTree(const std::vector<uint32_t> &Parents,
              std::vector<Binding> RootOutputs = {}) {
  ExecTreeBuilder B;
  std::vector<uint32_t> Open; // entered-but-not-exited, innermost last
  auto CloseTo = [&](uint32_t ParentId) {
    while (!Open.empty() && Open.back() != ParentId) {
      uint32_t Id = Open.back();
      Open.pop_back();
      B.exitUnit(Id, {}, Id == 1 ? std::move(RootOutputs)
                                 : std::vector<Binding>{});
    }
  };
  for (uint32_t I = 0; I < Parents.size(); ++I) {
    CloseTo(Parents[I]);
    UnitStart S;
    S.NodeId = I + 1;
    S.Name = "n" + std::to_string(I + 1);
    B.enterUnit(S);
    Open.push_back(I + 1);
  }
  CloseTo(0);
  return B.takeTree();
}

TEST(DynamicSliceTest, NullCriterionYieldsEmptySlice) {
  EXPECT_TRUE(dynamicSlice(nullptr, "y").empty());
}

TEST(DynamicSliceTest, UnknownOutputNameKeepsOnlyCriterion) {
  Value V = Value::makeInt(7);
  V.deps().insert(2);
  auto Tree = syntheticTree({0, 1}, {{"y", V}});
  auto Kept = dynamicSlice(Tree->getRoot(), "nosuch");
  EXPECT_EQ(Kept.ids(), (std::vector<uint32_t>{1}));
}

TEST(DynamicSliceTest, IntermediateKeptViaMarkedDescendant) {
  // root(1) -> mid(2) -> leaf(3), plus an irrelevant sibling other(4).
  // The output depends only on leaf; mid must be retained purely through
  // the ancestry closure, and other must not.
  Value V = Value::makeInt(42);
  V.deps().insert(3);
  auto Tree = syntheticTree({0, 1, 2, 1}, {{"y", V}});

  auto Kept = dynamicSlice(Tree->getRoot(), "y");
  EXPECT_EQ(Kept.ids(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_FALSE(Kept.count(4)) << "irrelevant sibling must be sliced away";
}

} // namespace
