//===- SDGTest.cpp - System dependence graph tests ------------------------===//

#include "analysis/SDG.h"

#include "pascal/Frontend.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

bool hasEdgeOfKind(const SDGNode *From, const SDGNode *To, SDGEdgeKind K) {
  for (const SDGNode::Edge &E : From->outs())
    if (E.N == To && E.K == K)
      return true;
  return false;
}

/// True when \p To is backward-reachable from \p From over any edges.
bool reaches(const SDGNode *From, const SDGNode *To) {
  std::set<const SDGNode *> Seen;
  std::vector<const SDGNode *> Stack = {From};
  while (!Stack.empty()) {
    const SDGNode *N = Stack.back();
    Stack.pop_back();
    if (N == To)
      return true;
    if (!Seen.insert(N).second)
      continue;
    for (const SDGNode::Edge &E : N->outs())
      Stack.push_back(E.N);
  }
  return false;
}

TEST(SDGTest, EntryAndFormalVertices) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  const RoutineDecl *P = Prog->getMain()->findNested("p");
  EXPECT_TRUE(G.entryOf(P));
  EXPECT_TRUE(G.formalIn(P, "y"));
  EXPECT_TRUE(G.formalIn(P, "x")) << "GRef global x becomes a formal-in";
  EXPECT_TRUE(G.formalOut(P, "y"));
  EXPECT_TRUE(G.formalOut(P, "z")) << "GMod global z becomes a formal-out";
}

TEST(SDGTest, ProgramRoutineHasFormalOutPerGlobal) {
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  EXPECT_TRUE(G.formalOut(Prog->getMain(), "mul"));
  EXPECT_TRUE(G.formalOut(Prog->getMain(), "sum"));
}

TEST(SDGTest, CallSiteGetsActualVertices) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 1u);
  const SDGCallRecord &Rec = *G.calls()[0];
  // actual-ins: arg w (var param), global x. actual-outs: w, global z.
  EXPECT_EQ(Rec.ActualIns.size(), 2u);
  EXPECT_EQ(Rec.ActualOuts.size(), 2u);
  EXPECT_TRUE(Rec.actualInForArg(0));
  EXPECT_TRUE(Rec.actualOutForArg(0));
  const VarDecl *X = Prog->getMain()->findLocal("x");
  const VarDecl *Z = Prog->getMain()->findLocal("z");
  EXPECT_TRUE(Rec.actualInForGlobal(X));
  EXPECT_TRUE(Rec.actualOutForGlobal(Z));
}

TEST(SDGTest, ParamLinkageEdges) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  const SDGCallRecord &Rec = *G.calls()[0];
  const RoutineDecl *P = Prog->getMain()->findNested("p");
  EXPECT_TRUE(hasEdgeOfKind(Rec.CallVertex, G.entryOf(P), SDGEdgeKind::Call));
  EXPECT_TRUE(hasEdgeOfKind(Rec.actualInForArg(0), G.formalIn(P, "y"),
                            SDGEdgeKind::ParamIn));
  EXPECT_TRUE(hasEdgeOfKind(G.formalOut(P, "y"), Rec.actualOutForArg(0),
                            SDGEdgeKind::ParamOut));
}

TEST(SDGTest, SummaryEdgesConnectActualInToActualOut) {
  auto Prog = compile("program p; var a, b: integer;"
                      "procedure copy(src: integer; var dst: integer);"
                      "begin dst := src; end;"
                      "begin a := 1; copy(a, b); end.");
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 1u);
  const SDGCallRecord &Rec = *G.calls()[0];
  EXPECT_TRUE(hasEdgeOfKind(Rec.actualInForArg(0), Rec.actualOutForArg(1),
                            SDGEdgeKind::Summary))
      << "dst depends on src inside copy";
  EXPECT_GT(G.numSummaryEdges(), 0u);
}

TEST(SDGTest, NoSummaryEdgeWhenOutputIndependentOfInput) {
  auto Prog = compile("program p; var a, b: integer;"
                      "procedure konst(src: integer; var dst: integer);"
                      "begin dst := 42; end;"
                      "begin a := 1; konst(a, b); end.");
  SDG G(*Prog);
  const SDGCallRecord &Rec = *G.calls()[0];
  EXPECT_FALSE(hasEdgeOfKind(Rec.actualInForArg(0), Rec.actualOutForArg(1),
                             SDGEdgeKind::Summary))
      << "dst := 42 ignores src";
}

TEST(SDGTest, SummaryEdgesThroughTransitiveCalls) {
  auto Prog = compile(
      "program p; var a, b: integer;"
      "procedure inner(x: integer; var y: integer); begin y := x + 1; end;"
      "procedure outer(u: integer; var v: integer); begin inner(u, v); end;"
      "begin a := 1; outer(a, b); end.");
  SDG G(*Prog);
  const SDGCallRecord *OuterCall = nullptr;
  for (const auto &Rec : G.calls())
    if (Rec->Site.Callee->getName() == "outer")
      OuterCall = Rec.get();
  ASSERT_TRUE(OuterCall);
  EXPECT_TRUE(hasEdgeOfKind(OuterCall->actualInForArg(0),
                            OuterCall->actualOutForArg(1),
                            SDGEdgeKind::Summary));
}

TEST(SDGTest, FunctionResultFlowsIntoConsumingStatement) {
  auto Prog = compile("program p; var r: integer;"
                      "function f(x: integer): integer; begin f := x; end;"
                      "begin r := f(3); end.");
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 1u);
  const SDGCallRecord &Rec = *G.calls()[0];
  SDGNode *AO = Rec.actualOutForResult();
  ASSERT_TRUE(AO);
  EXPECT_TRUE(hasEdgeOfKind(AO, Rec.CallVertex, SDGEdgeKind::Flow));
  const RoutineDecl *F = Prog->getMain()->findNested("f");
  ASSERT_TRUE(G.formalOutResult(F));
  EXPECT_TRUE(hasEdgeOfKind(G.formalOutResult(F), AO, SDGEdgeKind::ParamOut));
}

TEST(SDGTest, NestedCallResultFeedsOuterActualIn) {
  auto Prog = compile(
      "program p; var r: integer;"
      "function g(x: integer): integer; begin g := x * 2; end;"
      "function f(x: integer): integer; begin f := x + 1; end;"
      "begin r := f(g(5)); end.");
  SDG G(*Prog);
  const SDGCallRecord *FCall = nullptr, *GCall = nullptr;
  for (const auto &Rec : G.calls()) {
    if (Rec->Site.Callee->getName() == "f")
      FCall = Rec.get();
    if (Rec->Site.Callee->getName() == "g")
      GCall = Rec.get();
  }
  ASSERT_TRUE(FCall && GCall);
  EXPECT_TRUE(hasEdgeOfKind(GCall->actualOutForResult(),
                            FCall->actualInForArg(0), SDGEdgeKind::Flow));
}

TEST(SDGTest, Figure4GraphIsConnectedFromCriterionToBugSite) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  const RoutineDecl *Computs = Prog->getMain()->findNested("computs");
  const RoutineDecl *Decrement = Prog->getMain()->findNested("decrement");
  SDGNode *Criterion = G.formalOut(Computs, "r1");
  ASSERT_TRUE(Criterion);
  // Backward reachability (forward over reversed edges): check the bug site
  // reaches the criterion.
  bool Found = false;
  for (const auto &N : G.nodes())
    if (N->getRoutine() == Decrement && N->getKind() == SDGNode::Kind::Stmt)
      Found = Found || reaches(N.get(), Criterion);
  EXPECT_TRUE(Found) << "decrement's body influences computs output r1";
}

TEST(SDGTest, GraphStatisticsAreSane) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  EXPECT_GT(G.nodes().size(), 50u);
  EXPECT_GT(G.numEdges(), G.nodes().size());
  EXPECT_GT(G.numSummaryEdges(), 5u);
  EXPECT_FALSE(G.str().empty());
}

} // namespace

namespace {

TEST(SDGTest, DotExport) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  std::string Dot = G.dot();
  EXPECT_NE(Dot.find("digraph sdg"), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(Dot.find("entry p"), std::string::npos);
  EXPECT_NE(Dot.find("style=dotted, color=red"), std::string::npos)
      << "summary edges rendered distinctly";
}

} // namespace
