//===- SDGTest.cpp - System dependence graph tests ------------------------===//

#include "analysis/SDG.h"

#include "pascal/Frontend.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

#include <set>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

/// True when \p To is forward-reachable from \p From over any edges.
bool reaches(const SDG &G, SDGNodeId From, SDGNodeId To) {
  std::set<SDGNodeId> Seen;
  std::vector<SDGNodeId> Stack = {From};
  while (!Stack.empty()) {
    SDGNodeId N = Stack.back();
    Stack.pop_back();
    if (N == To)
      return true;
    if (!Seen.insert(N).second)
      continue;
    for (const SDGEdge &E : G.outs(N))
      Stack.push_back(E.N);
  }
  return false;
}

TEST(SDGTest, EntryAndFormalVertices) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  const RoutineDecl *P = Prog->getMain()->findNested("p");
  EXPECT_NE(G.entryOf(P), SDGNoNode);
  EXPECT_NE(G.formalIn(P, "y"), SDGNoNode);
  EXPECT_NE(G.formalIn(P, "x"), SDGNoNode)
      << "GRef global x becomes a formal-in";
  EXPECT_NE(G.formalOut(P, "y"), SDGNoNode);
  EXPECT_NE(G.formalOut(P, "z"), SDGNoNode)
      << "GMod global z becomes a formal-out";
}

TEST(SDGTest, ProgramRoutineHasFormalOutPerGlobal) {
  auto Prog = compile(workload::Figure2);
  SDG G(*Prog);
  EXPECT_NE(G.formalOut(Prog->getMain(), "mul"), SDGNoNode);
  EXPECT_NE(G.formalOut(Prog->getMain(), "sum"), SDGNoNode);
}

TEST(SDGTest, CallSiteGetsActualVertices) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 1u);
  const SDGCallRecord &Rec = G.calls()[0];
  // actual-ins: arg w (var param), global x. actual-outs: w, global z.
  EXPECT_EQ(Rec.ActualIns.size(), 2u);
  EXPECT_EQ(Rec.ActualOuts.size(), 2u);
  EXPECT_NE(Rec.actualInForArg(0), SDGNoNode);
  EXPECT_NE(Rec.actualOutForArg(0), SDGNoNode);
  const VarDecl *X = Prog->getMain()->findLocal("x");
  const VarDecl *Z = Prog->getMain()->findLocal("z");
  EXPECT_NE(Rec.actualInForGlobal(X), SDGNoNode);
  EXPECT_NE(Rec.actualOutForGlobal(Z), SDGNoNode);
}

TEST(SDGTest, ParamLinkageEdges) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  const SDGCallRecord &Rec = G.calls()[0];
  const RoutineDecl *P = Prog->getMain()->findNested("p");
  EXPECT_TRUE(G.hasEdge(Rec.CallVertex, G.entryOf(P), SDGEdgeKind::Call));
  EXPECT_TRUE(G.hasEdge(Rec.actualInForArg(0), G.formalIn(P, "y"),
                        SDGEdgeKind::ParamIn));
  EXPECT_TRUE(G.hasEdge(G.formalOut(P, "y"), Rec.actualOutForArg(0),
                        SDGEdgeKind::ParamOut));
}

TEST(SDGTest, SummaryEdgesConnectActualInToActualOut) {
  auto Prog = compile("program p; var a, b: integer;"
                      "procedure copy(src: integer; var dst: integer);"
                      "begin dst := src; end;"
                      "begin a := 1; copy(a, b); end.");
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 1u);
  const SDGCallRecord &Rec = G.calls()[0];
  EXPECT_TRUE(G.hasEdge(Rec.actualInForArg(0), Rec.actualOutForArg(1),
                        SDGEdgeKind::Summary))
      << "dst depends on src inside copy";
  EXPECT_GT(G.numSummaryEdges(), 0u);
}

TEST(SDGTest, NoSummaryEdgeWhenOutputIndependentOfInput) {
  auto Prog = compile("program p; var a, b: integer;"
                      "procedure konst(src: integer; var dst: integer);"
                      "begin dst := 42; end;"
                      "begin a := 1; konst(a, b); end.");
  SDG G(*Prog);
  const SDGCallRecord &Rec = G.calls()[0];
  EXPECT_FALSE(G.hasEdge(Rec.actualInForArg(0), Rec.actualOutForArg(1),
                         SDGEdgeKind::Summary))
      << "dst := 42 ignores src";
}

TEST(SDGTest, SummaryEdgesThroughTransitiveCalls) {
  auto Prog = compile(
      "program p; var a, b: integer;"
      "procedure inner(x: integer; var y: integer); begin y := x + 1; end;"
      "procedure outer(u: integer; var v: integer); begin inner(u, v); end;"
      "begin a := 1; outer(a, b); end.");
  SDG G(*Prog);
  const SDGCallRecord *OuterCall = nullptr;
  for (const SDGCallRecord &Rec : G.calls())
    if (Rec.Site.Callee->getName() == "outer")
      OuterCall = &Rec;
  ASSERT_TRUE(OuterCall);
  EXPECT_TRUE(G.hasEdge(OuterCall->actualInForArg(0),
                        OuterCall->actualOutForArg(1), SDGEdgeKind::Summary));
}

TEST(SDGTest, FunctionResultFlowsIntoConsumingStatement) {
  auto Prog = compile("program p; var r: integer;"
                      "function f(x: integer): integer; begin f := x; end;"
                      "begin r := f(3); end.");
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 1u);
  const SDGCallRecord &Rec = G.calls()[0];
  SDGNodeId AO = Rec.actualOutForResult();
  ASSERT_NE(AO, SDGNoNode);
  EXPECT_TRUE(G.hasEdge(AO, Rec.CallVertex, SDGEdgeKind::Flow));
  const RoutineDecl *F = Prog->getMain()->findNested("f");
  ASSERT_NE(G.formalOutResult(F), SDGNoNode);
  EXPECT_TRUE(G.hasEdge(G.formalOutResult(F), AO, SDGEdgeKind::ParamOut));
}

TEST(SDGTest, NestedCallResultFeedsOuterActualIn) {
  auto Prog = compile(
      "program p; var r: integer;"
      "function g(x: integer): integer; begin g := x * 2; end;"
      "function f(x: integer): integer; begin f := x + 1; end;"
      "begin r := f(g(5)); end.");
  SDG G(*Prog);
  const SDGCallRecord *FCall = nullptr, *GCall = nullptr;
  for (const SDGCallRecord &Rec : G.calls()) {
    if (Rec.Site.Callee->getName() == "f")
      FCall = &Rec;
    if (Rec.Site.Callee->getName() == "g")
      GCall = &Rec;
  }
  ASSERT_TRUE(FCall && GCall);
  EXPECT_TRUE(G.hasEdge(GCall->actualOutForResult(), FCall->actualInForArg(0),
                        SDGEdgeKind::Flow));
}

TEST(SDGTest, Figure4GraphIsConnectedFromCriterionToBugSite) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  const RoutineDecl *Computs = Prog->getMain()->findNested("computs");
  const RoutineDecl *Decrement = Prog->getMain()->findNested("decrement");
  SDGNodeId Criterion = G.formalOut(Computs, "r1");
  ASSERT_NE(Criterion, SDGNoNode);
  // Backward reachability (forward over reversed edges): check the bug site
  // reaches the criterion.
  bool Found = false;
  for (const SDGNode &N : G.nodes())
    if (N.getRoutine() == Decrement && N.getKind() == SDGNode::Kind::Stmt)
      Found = Found || reaches(G, N.getId(), Criterion);
  EXPECT_TRUE(Found) << "decrement's body influences computs output r1";
}

TEST(SDGTest, GraphStatisticsAreSane) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  EXPECT_GT(G.nodes().size(), 50u);
  EXPECT_GT(G.numEdges(), G.nodes().size());
  EXPECT_GT(G.numSummaryEdges(), 5u);
  EXPECT_FALSE(G.str().empty());
}

TEST(SDGTest, NodeIdsAreDenseAndRoutineContiguous) {
  auto Prog = compile(workload::Figure4Buggy);
  SDG G(*Prog);
  // Ids are the arena index, and each routine's vertices occupy one
  // contiguous id run (switching routines never switches back).
  std::vector<const RoutineDecl *> RunOrder;
  for (const SDGNode &N : G.nodes()) {
    EXPECT_EQ(&N, &G.node(N.getId()));
    if (RunOrder.empty() || RunOrder.back() != N.getRoutine())
      RunOrder.push_back(N.getRoutine());
  }
  std::set<const RoutineDecl *> Unique(RunOrder.begin(), RunOrder.end());
  EXPECT_EQ(Unique.size(), RunOrder.size());
}

TEST(SDGTest, TwoCallSitesGetIndependentSummaries) {
  // Two calls to the same routine: each site's actual-out depends on its
  // own actual-in only — the summary edges must not cross sites.
  auto Prog = compile("program p; var a, b, c, d: integer;"
                      "procedure copy(src: integer; var dst: integer);"
                      "begin dst := src; end;"
                      "begin a := 1; c := 2; copy(a, b); copy(c, d); end.");
  SDG G(*Prog);
  ASSERT_EQ(G.calls().size(), 2u);
  const SDGCallRecord &First = G.calls()[0];
  const SDGCallRecord &Second = G.calls()[1];
  EXPECT_TRUE(G.hasEdge(First.actualInForArg(0), First.actualOutForArg(1),
                        SDGEdgeKind::Summary));
  EXPECT_TRUE(G.hasEdge(Second.actualInForArg(0), Second.actualOutForArg(1),
                        SDGEdgeKind::Summary));
  EXPECT_FALSE(G.hasEdge(First.actualInForArg(0), Second.actualOutForArg(1),
                         SDGEdgeKind::Summary))
      << "summary edges are per call site";
  EXPECT_FALSE(G.hasEdge(Second.actualInForArg(0), First.actualOutForArg(1),
                         SDGEdgeKind::Summary));
}

TEST(SDGTest, RecursiveSummaryFixpointConverges) {
  auto Prog = compile(
      "program p; var a, b: integer;"
      "procedure down(n: integer; var acc: integer);"
      "begin if n > 0 then begin acc := acc + n; down(n - 1, acc); end; end;"
      "begin a := 5; b := 0; down(a, b); end.");
  SDG G(*Prog);
  const SDGCallRecord *TopCall = nullptr;
  for (const SDGCallRecord &Rec : G.calls())
    if (Rec.Site.Caller == Prog->getMain())
      TopCall = &Rec;
  ASSERT_TRUE(TopCall);
  EXPECT_TRUE(G.hasEdge(TopCall->actualInForArg(0),
                        TopCall->actualOutForArg(1), SDGEdgeKind::Summary))
      << "acc depends on n through the recursion";
  EXPECT_TRUE(G.hasEdge(TopCall->actualInForArg(1),
                        TopCall->actualOutForArg(1), SDGEdgeKind::Summary))
      << "acc depends on its incoming value";
}

TEST(SDGTest, MutuallyRecursiveSummaryFixpointConverges) {
  auto Prog = compile(
      "program p; var a, b: integer;"
      "procedure even(n: integer; var r: integer); forward;"
      "procedure odd(n: integer; var r: integer);"
      "begin if n = 0 then r := 0 else even(n - 1, r); end;"
      "procedure even(n: integer; var r: integer);"
      "begin if n = 0 then r := 1 else odd(n - 1, r); end;"
      "begin a := 4; even(a, b); end.");
  ASSERT_TRUE(Prog);
  SDG G(*Prog);
  const SDGCallRecord *TopCall = nullptr;
  for (const SDGCallRecord &Rec : G.calls())
    if (Rec.Site.Caller == Prog->getMain())
      TopCall = &Rec;
  ASSERT_TRUE(TopCall);
  EXPECT_TRUE(G.hasEdge(TopCall->actualInForArg(0),
                        TopCall->actualOutForArg(1), SDGEdgeKind::Summary))
      << "r depends on n through the even/odd cycle";
}

TEST(SDGTest, ParallelBuildIsBitIdenticalToSerial) {
  for (std::string_view Src :
       {std::string_view(workload::Figure4Buggy),
        std::string_view(workload::Figure2),
        std::string_view(workload::Section6Globals)}) {
    auto Prog = compile(Src);
    SDG Serial(*Prog, SDGBuildOptions{1});
    SDG Par2(*Prog, SDGBuildOptions{2});
    SDG ParHw(*Prog, SDGBuildOptions{0});
    ASSERT_EQ(Serial.nodes().size(), Par2.nodes().size());
    EXPECT_EQ(Serial.numEdges(), Par2.numEdges());
    EXPECT_EQ(Serial.numSummaryEdges(), Par2.numSummaryEdges());
    // Byte-identical renderings pin down node ids, labels, adjacency and
    // its per-vertex ordering.
    EXPECT_EQ(Serial.str(), Par2.str());
    EXPECT_EQ(Serial.str(), ParHw.str());
    EXPECT_EQ(Serial.dot(), ParHw.dot());
  }
}

} // namespace

namespace {

TEST(SDGTest, DotExport) {
  auto Prog = compile(workload::Section6Globals);
  SDG G(*Prog);
  std::string Dot = G.dot();
  EXPECT_NE(Dot.find("digraph sdg"), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(Dot.find("entry p"), std::string::npos);
  EXPECT_NE(Dot.find("style=dotted, color=red"), std::string::npos)
      << "summary edges rendered distinctly";
}

} // namespace
