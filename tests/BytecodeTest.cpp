//===- BytecodeTest.cpp - Bytecode tier differential and unit tests -------===//
//
// The bytecode tier's contract is *observational equivalence*: for every
// program it accepts, a bytecode execution must be byte-identical to the
// tree walker's — same ExecResult, same serialized execution tree, same
// dynamic slices — under every tracing flag combination. These tests sweep
// that contract over the synthetic workload corpus and the paper programs,
// and pin the tier-selection mechanics (fallback on unsupported programs,
// tier counters, injected pre-compiled code).
//
// The cell-arena free-list obligations ride along at the bottom: handle
// reuse across scope exits and watermark reset across sessions are what
// make both tiers' storage layer O(live cells), and both tiers share it.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "pascal/Frontend.h"
#include "slicing/DynamicSlicer.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::workload;

namespace {

std::unique_ptr<pascal::Program> compile(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

/// Deterministic program input, long enough for every corpus program;
/// reads past the end fail identically in both tiers.
std::vector<int64_t> corpusInput() {
  return {3, 7, 2, 9, 4, 1, 8, 5, 6, 10, 11, 13, 12, 15, 14, 17};
}

std::string escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\n')
      Out += "\\n";
    else if (C == '\\')
      Out += "\\\\";
    else
      Out += C;
  }
  return Out;
}

/// Renders one (program, options) execution — result, tree, and every
/// dynamic slice — exactly as GoldenDifferentialTest does, so a transcript
/// mismatch localizes to the same observable the goldens pin.
std::string renderRun(const pascal::Program &Prog, const InterpOptions &Opts) {
  Interpreter I(Prog, Opts);
  I.setInput(corpusInput());
  trace::ExecTreeBuilder Builder;
  I.setListener(&Builder);
  ExecResult R = I.run();
  auto Tree = Builder.takeTree();

  std::ostringstream Out;
  Out << "ok: " << (R.Ok ? 1 : 0) << "\n";
  if (!R.Ok)
    Out << "error: " << R.Error.Loc.Line << ":" << R.Error.Loc.Column << " "
        << escapeLine(R.Error.Message) << "\n";
  Out << "output: " << escapeLine(R.Output) << "\n";
  Out << "steps: " << R.Steps << "\n";
  Out << "units: " << R.UnitsExecuted << "\n";
  for (const Binding &B : R.FinalGlobals)
    Out << "global " << B.Name << " = " << B.V.str() << "\n";
  Out << "tree:\n" << (Tree && Tree->getRoot() ? Tree->str() : "<none>\n");

  if (Opts.TrackDeps && Tree && Tree->getRoot()) {
    Out << "slices:\n";
    for (uint32_t Id = 1; Id <= R.UnitsExecuted; ++Id) {
      const trace::ExecNode *N = Tree->node(Id);
      if (!N)
        continue;
      for (const Binding &B : N->getOutputs()) {
        auto Kept = slicing::dynamicSlice(N, B.Name);
        Out << "slice " << Id << "." << B.Name << ":";
        for (uint32_t K : Kept.ids())
          Out << " " << K;
        Out << "\n";
      }
    }
  }
  return Out.str();
}

/// Sweeps all 16 flag combinations, comparing tree- and bytecode-tier
/// transcripts line by line (line diffs localize better than one giant
/// string mismatch).
void expectTiersAgree(const pascal::Program &Prog, const std::string &Label) {
  for (int Mask = 0; Mask < 16; ++Mask) {
    InterpOptions Opts;
    Opts.TraceLoops = (Mask & 1) != 0;
    Opts.TraceIterations = (Mask & 2) != 0;
    Opts.TrackDeps = (Mask & 4) != 0;
    Opts.DetectUninitialized = (Mask & 8) != 0;

    Opts.Tier = ExecTier::Tree;
    std::string TreeSide = renderRun(Prog, Opts);
    Opts.Tier = ExecTier::Bytecode;
    std::string VMSide = renderRun(Prog, Opts);

    if (TreeSide == VMSide)
      continue;
    std::istringstream A(TreeSide), B(VMSide);
    std::string LA, LB;
    unsigned Line = 0;
    while (std::getline(A, LA) && std::getline(B, LB)) {
      ++Line;
      ASSERT_EQ(LA, LB) << Label << " combo " << Mask << " line " << Line;
    }
    FAIL() << Label << " combo " << Mask
           << ": transcripts differ in length only";
  }
}

void expectTiersAgreeOnSource(const std::string &Src,
                              const std::string &Label) {
  auto Prog = compile(Src);
  ASSERT_TRUE(Prog != nullptr);
  expectTiersAgree(*Prog, Label);
}

//===----------------------------------------------------------------------===//
// Differential sweep: tree walker vs bytecode VM
//===----------------------------------------------------------------------===//

TEST(BytecodeDifferential, PaperFigure4) {
  expectTiersAgreeOnSource(Figure4Buggy, "figure4-buggy");
  expectTiersAgreeOnSource(Figure4Fixed, "figure4-fixed");
}

TEST(BytecodeDifferential, ChainPrograms) {
  ProgramPair P = chainProgram(6, 2);
  expectTiersAgreeOnSource(P.Fixed, "chain6-fixed");
  expectTiersAgreeOnSource(P.Buggy, "chain6-buggy");
}

TEST(BytecodeDifferential, TreeAndWidePrograms) {
  expectTiersAgreeOnSource(treeProgram(3).Buggy, "tree3-buggy");
  expectTiersAgreeOnSource(wideIrrelevantProgram(8).Buggy, "wide8-buggy");
}

TEST(BytecodeDifferential, SummaryMesh) {
  expectTiersAgreeOnSource(summaryMeshProgram(2, 3).Buggy, "mesh2x3-buggy");
}

/// Seeded random programs; odd seeds are goto-free (bytecode executes
/// them), even seeds plant non-local gotos (the bytecode tier falls back
/// to the tree walker, which must be just as transcript-identical).
class BytecodeSeededDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BytecodeSeededDifferential, RandomProgram) {
  uint32_t Seed = GetParam();
  SyntheticOptions Opts;
  Opts.Seed = Seed * 17 + 5;
  Opts.NumRoutines = 4 + Seed % 4;
  Opts.NumGlobals = 2 + Seed % 3;
  Opts.StmtsPerRoutine = 4 + Seed % 3;
  Opts.UseGotos = (Seed % 2) == 0;
  ProgramPair P = randomProgram(Opts);
  expectTiersAgreeOnSource(P.Buggy, "seed" + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytecodeSeededDifferential,
                         ::testing::Range(1u, 9u));

//===----------------------------------------------------------------------===//
// Tier selection mechanics
//===----------------------------------------------------------------------===//

TEST(BytecodeTier, CountsBytecodeRuns) {
  auto Prog = compile(chainProgram(3, 1).Fixed);
  obs::Counter &C = obs::Registry::global().counter("interp.tier.bytecode");
  uint64_t Before = C.value();
  InterpOptions Opts;
  Opts.Tier = ExecTier::Bytecode;
  Interpreter I(*Prog, Opts);
  ExecResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_EQ(C.value(), Before + 1);
}

TEST(BytecodeTier, FallsBackOnNonLocalGoto) {
  // Non-local goto: label in the main program, goto inside a procedure.
  // The compiler rejects it, so a Bytecode-tier request runs the tree
  // walker — correctly, and with the fallback counter bumped.
  const char *Src = "program p;\n"
                    "label 9;\n"
                    "var x: integer;\n"
                    "procedure q;\n"
                    "begin\n"
                    "  goto 9\n"
                    "end;\n"
                    "begin\n"
                    "  x := 1;\n"
                    "  q;\n"
                    "  x := 2;\n"
                    "9:\n"
                    "  writeln(x)\n"
                    "end.";
  auto Prog = compile(Src);
  std::string WhyNot;
  EXPECT_EQ(bytecode::compile(*Prog, false, &WhyNot), nullptr);
  EXPECT_FALSE(WhyNot.empty());

  obs::Counter &Fallback =
      obs::Registry::global().counter("interp.tier.fallback");
  uint64_t Before = Fallback.value();
  InterpOptions Opts;
  Opts.Tier = ExecTier::Bytecode;
  Interpreter I(*Prog, Opts);
  ExecResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_EQ(R.Output, "1\n");
  EXPECT_EQ(Fallback.value(), Before + 1);
}

TEST(BytecodeTier, TreeTierRequestNeverCompiles) {
  auto Prog = compile(chainProgram(3, 1).Fixed);
  obs::Counter &C = obs::Registry::global().counter("interp.tier.tree");
  uint64_t Before = C.value();
  InterpOptions Opts;
  Opts.Tier = ExecTier::Tree;
  Interpreter I(*Prog, Opts);
  ASSERT_TRUE(I.run().Ok);
  EXPECT_EQ(C.value(), Before + 1);
}

TEST(BytecodeTier, InjectedCodeIsUsed) {
  auto Prog = compile(chainProgram(4, 2).Fixed);
  auto Code = bytecode::compile(*Prog, /*Checked=*/false);
  ASSERT_TRUE(Code != nullptr);

  InterpOptions Opts;
  Opts.Tier = ExecTier::Bytecode;
  Opts.Code = Code;
  Interpreter I(*Prog, Opts);
  ExecResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error.Message;

  // Same program through the tree walker: identical observable result.
  InterpOptions TreeOpts;
  TreeOpts.Tier = ExecTier::Tree;
  Interpreter T(*Prog, TreeOpts);
  ExecResult RT = T.run();
  ASSERT_TRUE(RT.Ok);
  EXPECT_EQ(R.Output, RT.Output);
  EXPECT_EQ(R.Steps, RT.Steps);
  EXPECT_EQ(R.UnitsExecuted, RT.UnitsExecuted);
}

TEST(BytecodeTier, MismatchedInjectedCodeIsIgnored) {
  // Injected code compiled for the *unchecked* mode must not be used by a
  // DetectUninitialized run; the interpreter compiles privately instead,
  // and the strict check still fires.
  const char *Src = "program p;\n"
                    "var x, y: integer;\n"
                    "begin\n"
                    "  y := x;\n"
                    "  writeln(y)\n"
                    "end.";
  auto Prog = compile(Src);
  auto Unchecked = bytecode::compile(*Prog, /*Checked=*/false);
  ASSERT_TRUE(Unchecked != nullptr);

  InterpOptions Opts;
  Opts.Tier = ExecTier::Bytecode;
  Opts.DetectUninitialized = true;
  Opts.Code = Unchecked; // wrong mode on purpose
  Interpreter I(*Prog, Opts);
  ExecResult R = I.run();
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("x"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compiled-program shape
//===----------------------------------------------------------------------===//

TEST(BytecodeCompile, CheckedAndUncheckedDiffer) {
  auto Prog = compile(chainProgram(3, 1).Fixed);
  auto Plain = bytecode::compile(*Prog, false);
  auto Checked = bytecode::compile(*Prog, true);
  ASSERT_TRUE(Plain != nullptr);
  ASSERT_TRUE(Checked != nullptr);
  EXPECT_FALSE(Plain->Checked);
  EXPECT_TRUE(Checked->Checked);
  EXPECT_EQ(Plain->Prog, Prog.get());
  EXPECT_GT(Plain->memoryBytes(), 0u);
}

TEST(BytecodeCompile, ArgPoolCoversEverySite) {
  auto Prog = compile(summaryMeshProgram(2, 3).Fixed);
  auto Code = bytecode::compile(*Prog, false);
  ASSERT_TRUE(Code != nullptr);
  ASSERT_FALSE(Code->Sites.empty());
  for (const bytecode::CallSiteInfo &Site : Code->Sites) {
    EXPECT_LE(static_cast<size_t>(Site.ArgStart) + Site.ArgCount,
              Code->ArgPool.size());
    // Mesh procedures take two value and two var parameters.
    EXPECT_EQ(Site.ArgCount, 4u);
  }
}

//===----------------------------------------------------------------------===//
// Cell-arena free list (shared storage substrate, both tiers)
//===----------------------------------------------------------------------===//

/// A program whose calls enter and exit repeatedly: every exit returns the
/// callee's cells to the pool, every subsequent call must reuse them.
const char *PoolSrc = "program p;\n"
                      "var i, acc: integer;\n"
                      "function f(n: integer): integer;\n"
                      "var a, b, c: integer;\n"
                      "begin\n"
                      "  a := n + 1; b := a * 2; c := b - n; f := c\n"
                      "end;\n"
                      "begin\n"
                      "  acc := 0;\n"
                      "  for i := 1 to 50 do acc := acc + f(i);\n"
                      "  writeln(acc)\n"
                      "end.";

TEST(CellArena, FreeListRecyclesHandlesAcrossCalls) {
  auto Prog = compile(PoolSrc);
  obs::Counter &Pooled =
      obs::Registry::global().counter("interp.cells.pooled");
  for (ExecTier Tier : {ExecTier::Tree, ExecTier::Bytecode}) {
    uint64_t Before = Pooled.value();
    InterpOptions Opts;
    Opts.Tier = Tier;
    Interpreter I(*Prog, Opts);
    ASSERT_TRUE(I.run().Ok);
    // 50 calls x 5 cells (param + 3 locals + result): all but the first
    // call's allocations must come from the free list.
    EXPECT_GE(Pooled.value() - Before, 49u * 5u)
        << "tier " << static_cast<int>(Tier);
  }
}

TEST(CellArena, WatermarkResetsAcrossSessions) {
  auto Prog = compile(PoolSrc);
  obs::Counter &Pooled =
      obs::Registry::global().counter("interp.cells.pooled");
  InterpOptions Opts;
  Opts.TrackDeps = true;
  Interpreter I(*Prog, Opts);
  I.setInput(corpusInput());
  ExecResult First = I.run();
  ASSERT_TRUE(First.Ok);

  // Second session on the same Interpreter: reset() must restart the
  // arena watermark, so the run is observably identical (same output,
  // same steps) and pools at least as many handles as the first.
  uint64_t Before = Pooled.value();
  ExecResult Second = I.run();
  ASSERT_TRUE(Second.Ok);
  EXPECT_EQ(First.Output, Second.Output);
  EXPECT_EQ(First.Steps, Second.Steps);
  EXPECT_EQ(First.UnitsExecuted, Second.UnitsExecuted);
  EXPECT_GE(Pooled.value() - Before, 49u * 5u);
}

TEST(CellArena, RepeatedSessionsStayByteIdentical) {
  // Ten sessions interleaving tiers on one program: serial numbers, unit
  // ids and dependence sets must restart exactly, or transcripts drift.
  auto Prog = compile(chainProgram(4, 2).Buggy);
  InterpOptions Opts;
  Opts.TrackDeps = true;
  Opts.TraceLoops = true;
  Opts.Tier = ExecTier::Tree;
  std::string Golden = renderRun(*Prog, Opts);
  for (int Round = 0; Round < 10; ++Round) {
    Opts.Tier = (Round % 2 == 0) ? ExecTier::Bytecode : ExecTier::Tree;
    EXPECT_EQ(renderRun(*Prog, Opts), Golden) << "round " << Round;
  }
}

} // namespace
