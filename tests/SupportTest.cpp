//===- SupportTest.cpp - Support library and value-model unit tests -------===//

#include "interp/Value.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/OnceCache.h"
#include "support/SourceLoc.h"
#include "support/StringUtils.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace gadt;

namespace {

//===----------------------------------------------------------------------===//
// SourceLoc / SourceRange
//===----------------------------------------------------------------------===//

TEST(SourceLocTest, ValidityAndRendering) {
  SourceLoc Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.str(), "<unknown>");
  SourceLoc L(3, 14);
  EXPECT_TRUE(L.isValid());
  EXPECT_EQ(L.str(), "3:14");
}

TEST(SourceLocTest, Ordering) {
  EXPECT_LT(SourceLoc(1, 9), SourceLoc(2, 1));
  EXPECT_LT(SourceLoc(2, 1), SourceLoc(2, 5));
  EXPECT_EQ(SourceLoc(2, 5), SourceLoc(2, 5));
  EXPECT_NE(SourceLoc(2, 5), SourceLoc(2, 6));
}

TEST(SourceRangeTest, Rendering) {
  SourceRange R(SourceLoc(1, 2), SourceLoc(1, 8));
  EXPECT_EQ(R.str(), "1:2-1:8");
  EXPECT_EQ(SourceRange().str(), "<unknown>");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsOnlyErrors) {
  DiagnosticsEngine D;
  D.note(SourceLoc(1, 1), "fyi");
  D.warning(SourceLoc(2, 1), "hmm");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 1), "boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, RendersCompilerStyle) {
  DiagnosticsEngine D;
  D.error(SourceLoc(7, 3), "unexpected thing");
  EXPECT_EQ(D.str(), "7:3: error: unexpected thing\n");
  D.clear();
  EXPECT_TRUE(D.empty());
  EXPECT_FALSE(D.hasErrors());
}

TEST(DiagnosticsTest, InvalidLocationOmitsPrefix) {
  DiagnosticsEngine D;
  D.error(SourceLoc(), "global problem");
  EXPECT_EQ(D.str(), "error: global problem\n");
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, ToLower) {
  EXPECT_EQ(toLower("MiXeD_09"), "mixed_09");
  EXPECT_EQ(toLower(""), "");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, "+"), "solo");
}

TEST(StringUtilsTest, SplitLines) {
  auto Lines = splitLines("a\nb\n\nc");
  ASSERT_EQ(Lines.size(), 4u);
  EXPECT_EQ(Lines[2], "");
  EXPECT_EQ(splitLines("x\n").size(), 1u) << "trailing newline adds no line";
  EXPECT_TRUE(splitLines("").empty());
}

TEST(StringUtilsTest, CountCodeLines) {
  EXPECT_EQ(countCodeLines("a\n \n\t\nb\n"), 2u);
  EXPECT_EQ(countCodeLines(""), 0u);
  EXPECT_TRUE(isBlank("  \t "));
  EXPECT_FALSE(isBlank(" x "));
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

TEST(CastingTest, IsaCastDynCast) {
  using namespace gadt::pascal;
  IntLiteralExpr Int(SourceLoc(1, 1), 42);
  Expr *E = &Int;
  EXPECT_TRUE(isa<IntLiteralExpr>(E));
  EXPECT_FALSE(isa<BoolLiteralExpr>(E));
  EXPECT_EQ(cast<IntLiteralExpr>(E)->getValue(), 42);
  EXPECT_EQ(dyn_cast<BoolLiteralExpr>(E), nullptr);
  EXPECT_NE(dyn_cast<IntLiteralExpr>(E), nullptr);
  Expr *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<IntLiteralExpr>(Null), nullptr);
}

//===----------------------------------------------------------------------===//
// DepSet
//===----------------------------------------------------------------------===//

TEST(DepSetTest, InsertKeepsSortedUnique) {
  interp::DepSet S;
  S.insert(5);
  S.insert(1);
  S.insert(5);
  S.insert(3);
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{1, 3, 5}));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(4));
}

TEST(DepSetTest, MergeIsUnion) {
  interp::DepSet A, B;
  A.insert(1);
  A.insert(4);
  B.insert(2);
  B.insert(4);
  A.mergeWith(B);
  EXPECT_EQ(A.ids(), (std::vector<uint32_t>{1, 2, 4}));
  interp::DepSet Empty;
  A.mergeWith(Empty);
  EXPECT_EQ(A.size(), 3u);
  Empty.mergeWith(A);
  EXPECT_EQ(Empty.size(), 3u);
}

TEST(DepSetTest, MergeSelf) {
  interp::DepSet S;
  for (uint32_t Id : {3u, 1u, 7u})
    S.insert(Id);
  S.mergeWith(S);
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{1, 3, 7}));
  // Self-merge on a heap-backed set (> inline capacity) as well.
  for (uint32_t Id : {9u, 11u, 13u, 15u})
    S.insert(Id);
  S.mergeWith(S);
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{1, 3, 7, 9, 11, 13, 15}));
}

TEST(DepSetTest, MergeDisjoint) {
  interp::DepSet A, B;
  for (uint32_t Id : {1u, 3u, 5u})
    A.insert(Id);
  for (uint32_t Id : {2u, 4u, 6u})
    B.insert(Id);
  A.mergeWith(B);
  EXPECT_EQ(A.ids(), (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(B.ids(), (std::vector<uint32_t>{2, 4, 6})); // argument untouched
}

TEST(DepSetTest, MergeFullyOverlapping) {
  interp::DepSet A, B;
  for (uint32_t Id : {2u, 4u, 8u})
    A.insert(Id);
  for (uint32_t Id : {2u, 4u, 8u})
    B.insert(Id);
  A.mergeWith(B);
  EXPECT_EQ(A.ids(), (std::vector<uint32_t>{2, 4, 8}));
  // Strict subset in either direction is also a no-copy path.
  interp::DepSet Sub;
  Sub.insert(4);
  A.mergeWith(Sub);
  EXPECT_EQ(A.ids(), (std::vector<uint32_t>{2, 4, 8}));
  Sub.mergeWith(A);
  EXPECT_EQ(Sub.ids(), (std::vector<uint32_t>{2, 4, 8}));
}

TEST(DepSetTest, SpillsInlineToHeapAndBack) {
  // Cross the inline-capacity boundary via insert and via merge; contains,
  // ids order, and equality must be representation-independent.
  interp::DepSet S;
  for (uint32_t Id = 1; Id <= 12; ++Id)
    S.insert(13 - Id);
  EXPECT_EQ(S.size(), 12u);
  for (uint32_t Id = 1; Id <= 12; ++Id)
    EXPECT_TRUE(S.contains(Id));
  EXPECT_FALSE(S.contains(13));

  interp::DepSet A, B;
  for (uint32_t Id : {1u, 2u, 3u})
    A.insert(Id);
  for (uint32_t Id : {10u, 20u, 30u})
    B.insert(Id);
  A.mergeWith(B);
  EXPECT_EQ(A.ids(), (std::vector<uint32_t>{1, 2, 3, 10, 20, 30}));

  interp::DepSet C = A; // shared heap handle
  EXPECT_TRUE(C == A);
  C.insert(5); // copy-on-write: A must not see the 5
  EXPECT_TRUE(C.contains(5));
  EXPECT_FALSE(A.contains(5));
  interp::DepSet EmptyAdopts;
  EmptyAdopts.mergeWith(A);
  EXPECT_TRUE(EmptyAdopts == A);
}

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(ValueTest, KindsAndEquality) {
  using interp::Value;
  EXPECT_TRUE(Value().isUnset());
  EXPECT_TRUE(Value::makeInt(3).equals(Value::makeInt(3)));
  EXPECT_FALSE(Value::makeInt(3).equals(Value::makeInt(4)));
  EXPECT_FALSE(Value::makeInt(1).equals(Value::makeBool(true)));
  interp::ArrayVal A;
  A.Lo = 1;
  A.Hi = 2;
  A.Elems = {1, 2};
  interp::ArrayVal B = A;
  EXPECT_TRUE(Value::makeArray(A).equals(Value::makeArray(B)));
  B.Elems[1] = 9;
  EXPECT_FALSE(Value::makeArray(A).equals(Value::makeArray(B)));
}

TEST(ValueTest, Rendering) {
  using interp::Value;
  EXPECT_EQ(Value().str(), "<unset>");
  EXPECT_EQ(Value::makeInt(-7).str(), "-7");
  EXPECT_EQ(Value::makeBool(true).str(), "true");
  EXPECT_EQ(Value::makeStr("hi").str(), "'hi'");
  interp::ArrayVal A;
  A.Lo = 1;
  A.Hi = 3;
  A.Elems = {1, 2, 3};
  EXPECT_EQ(Value::makeArray(A).str(), "[1, 2, 3]");
}

TEST(ValueTest, ArrayHelpers) {
  interp::ArrayVal A;
  A.Lo = -1;
  A.Hi = 1;
  A.Elems = {10, 20, 30};
  EXPECT_EQ(A.size(), 3);
  EXPECT_TRUE(A.inBounds(-1));
  EXPECT_TRUE(A.inBounds(1));
  EXPECT_FALSE(A.inBounds(2));
  EXPECT_EQ(A.at(0), 20);
  A.at(-1) = 99;
  EXPECT_EQ(A.Elems[0], 99);
}

//===----------------------------------------------------------------------===//
// Pretty-printer round trips
//===----------------------------------------------------------------------===//

TEST(PrettyPrinterTest, AllPaperProgramsRoundTrip) {
  for (const char *Src :
       {workload::Figure4Buggy, workload::Figure2,
        workload::Section6Globals, workload::Section6GlobalGoto,
        workload::Section6LoopGoto, workload::ArrsumProgram}) {
    DiagnosticsEngine D1;
    auto P1 = pascal::parseAndCheck(Src, D1);
    ASSERT_TRUE(P1) << D1.str();
    std::string Printed = pascal::printProgram(*P1);
    DiagnosticsEngine D2;
    auto P2 = pascal::parseAndCheck(Printed, D2);
    ASSERT_TRUE(P2) << D2.str() << "\n" << Printed;
    EXPECT_EQ(pascal::printProgram(*P2), Printed) << "fixed point";
  }
}

TEST(PrettyPrinterTest, StatementRendering) {
  DiagnosticsEngine D;
  auto P = pascal::parseAndCheck(
      "program p; label 9; var x: integer;"
      "begin repeat x := x + 1; until x > 3; goto 9; 9: writeln(x); end.",
      D);
  ASSERT_TRUE(P);
  const auto &Body = P->getMain()->getBody()->getBody();
  EXPECT_EQ(pascal::printStmt(*Body[0]),
            "repeat\n  x := x + 1;\nuntil x > 3;\n");
  EXPECT_EQ(pascal::printStmt(*Body[1]), "goto 9;\n");
}

//===----------------------------------------------------------------------===//
// OnceCache exception safety
//===----------------------------------------------------------------------===//

TEST(OnceCacheTest, ThrowingBuilderDoesNotPoisonTheSlot) {
  OnceCache<int, int> Cache;
  EXPECT_THROW(
      Cache.getOrBuild(
          1, []() -> std::shared_ptr<const int> {
            throw std::runtime_error("builder failed");
          }),
      std::runtime_error);
  // The failed slot was removed, not published: the next request rebuilds
  // and succeeds.
  EXPECT_EQ(Cache.size(), 0u);
  auto V = Cache.getOrBuild(1, [] { return std::make_shared<const int>(42); });
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 42);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(OnceCacheTest, ConcurrentWaitersSurviveAThrowingBuilder) {
  OnceCache<int, int> Cache;
  // The first builder to run throws; every waiter must wake, retry, and
  // share the value built by whichever thread wins the retry.
  std::atomic<int> Builds{0};
  std::atomic<int> Throws{0};
  auto Build = [&]() -> std::shared_ptr<const int> {
    if (Builds.fetch_add(1) == 0)
      throw std::runtime_error("first build fails");
    return std::make_shared<const int>(7);
  };
  constexpr int kThreads = 8;
  std::vector<std::thread> Ts;
  std::vector<int> Got(kThreads, 0);
  for (int I = 0; I != kThreads; ++I)
    Ts.emplace_back([&, I] {
      for (;;) {
        try {
          auto V = Cache.getOrBuild(5, Build);
          ASSERT_TRUE(V);
          Got[I] = *V;
          return;
        } catch (const std::runtime_error &) {
          ++Throws; // this thread ran the failing build; retry
        }
      }
    });
  for (std::thread &T : Ts)
    T.join();
  for (int I = 0; I != kThreads; ++I)
    EXPECT_EQ(Got[I], 7);
  EXPECT_EQ(Throws.load(), 1);
  EXPECT_EQ(Cache.size(), 1u);
  auto V = Cache.peek(5);
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 7);
}

} // namespace
