//===- TransformTest.cpp - Transformation phase tests (paper Section 6) ---===//

#include "transform/Transform.h"

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "interp/Interpreter.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "support/StringUtils.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::transform;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

struct Transformed {
  std::unique_ptr<Program> Orig;
  TransformResult Result;

  explicit Transformed(std::string_view Src,
                       TransformOptions Opts = TransformOptions()) {
    Orig = compile(Src);
    DiagnosticsEngine Diags;
    Result = transformProgram(*Orig, Diags, Opts);
    EXPECT_TRUE(Result.Transformed != nullptr) << Diags.str();
  }

  Program &prog() { return *Result.Transformed; }
};

bool hasNonLocalGotos(Program &P) {
  bool Found = false;
  forEachRoutine(P.getMain(), [&](RoutineDecl *R) {
    if (R->getBody())
      forEachStmt(R->getBody(), [&](Stmt *S) {
        if (auto *GS = dyn_cast<GotoStmt>(S))
          if (GS->isNonLocal())
            Found = true;
      });
  });
  return Found;
}

bool isSideEffectFree(Program &P) {
  CallGraph CG(P);
  SideEffectAnalysis SEA(P, CG);
  return SEA.programIsSideEffectFree();
}

/// Runs \p P on \p Input; EXPECTs success; returns (output, final globals).
std::pair<std::string, std::vector<Binding>>
runOk(Program &P, std::vector<int64_t> Input = {}) {
  Interpreter I(P);
  I.setInput(std::move(Input));
  ExecResult R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error.Message << " in:\n" << printProgram(P);
  return {R.Output, R.FinalGlobals};
}

/// Original and transformed programs must agree on output and on every
/// final global value.
void expectEquivalent(Program &Orig, Program &Xformed,
                      std::vector<int64_t> Input = {}) {
  auto [OutO, GlobO] = runOk(Orig, Input);
  auto [OutX, GlobX] = runOk(Xformed, Input);
  EXPECT_EQ(OutO, OutX);
  // The transformation may add helper locals at program level (exit
  // conditions, leave flags); compare the original globals by name.
  for (const Binding &BO : GlobO) {
    const Binding *BX = nullptr;
    for (const Binding &Candidate : GlobX)
      if (Candidate.Name == BO.Name)
        BX = &Candidate;
    ASSERT_TRUE(BX) << "global " << BO.Name << " vanished";
    EXPECT_TRUE(BO.V.equals(BX->V))
        << BO.Name << ": " << BO.V.str() << " vs " << BX->V.str() << "\n"
        << printProgram(Xformed);
  }
}

//===----------------------------------------------------------------------===//
// Globals to parameters
//===----------------------------------------------------------------------===//

TEST(GlobalsToParamsTest, Section6ExampleGetsInAndOutParams) {
  Transformed T(workload::Section6Globals);
  RoutineDecl *P = T.prog().getMain()->findNested("p");
  ASSERT_TRUE(P);
  // Original: p(var y). Transformed: p(var y; in x; out z).
  ASSERT_EQ(P->getParams().size(), 3u);
  EXPECT_EQ(P->getParams()[0]->getName(), "y");
  EXPECT_EQ(P->getParams()[1]->getName(), "x");
  EXPECT_EQ(P->getParams()[1]->getMode(), ParamMode::In);
  EXPECT_EQ(P->getParams()[2]->getName(), "z");
  EXPECT_EQ(P->getParams()[2]->getMode(), ParamMode::Out);
  EXPECT_EQ(T.Result.Stats.GlobalsConverted, 2u);
}

TEST(GlobalsToParamsTest, ResultIsSideEffectFree) {
  Transformed T(workload::Section6Globals);
  EXPECT_FALSE(isSideEffectFree(*T.Orig));
  EXPECT_TRUE(isSideEffectFree(T.prog()));
}

TEST(GlobalsToParamsTest, SemanticsPreserved) {
  Transformed T(workload::Section6Globals);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, ReadWriteGlobalBecomesVarParam) {
  Transformed T("program p; var g: integer;"
                "procedure bump; begin g := g + 1; end;"
                "begin g := 5; bump; bump; writeln(g); end.");
  RoutineDecl *Bump = T.prog().getMain()->findNested("bump");
  ASSERT_EQ(Bump->getParams().size(), 1u);
  EXPECT_EQ(Bump->getParams()[0]->getMode(), ParamMode::Var);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, TransitiveEffectsConvertWholeChain) {
  Transformed T("program p; var g: integer;"
                "procedure leaf; begin g := g * 2; end;"
                "procedure mid; begin leaf; end;"
                "procedure top; begin mid; end;"
                "begin g := 3; top; writeln(g); end.");
  for (const char *Name : {"leaf", "mid", "top"}) {
    RoutineDecl *R = T.prog().getMain()->findNested(Name);
    ASSERT_EQ(R->getParams().size(), 1u) << Name;
    EXPECT_EQ(R->getParams()[0]->getName(), "g") << Name;
    EXPECT_EQ(R->getParams()[0]->getMode(), ParamMode::Var) << Name;
  }
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, NameCollisionGetsFreshName) {
  Transformed T("program p; var g: integer;"
                "procedure q(g: integer); begin end;"
                "procedure r; var x: integer;"
                "begin x := g; q(x); end;"
                // r reads global g; q has a param also named g.
                "procedure s(g: integer); var y: integer;"
                "begin y := 0; end;"
                "begin g := 7; r; end.");
  RoutineDecl *R = T.prog().getMain()->findNested("r");
  ASSERT_EQ(R->getParams().size(), 1u);
  EXPECT_EQ(R->getParams()[0]->getName(), "g");
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, CollisionInsideConvertedRoutineRenames) {
  Transformed T("program p; var g: integer;"
                "procedure q; var g2: integer;"
                "  procedure inner(g: integer); begin g2 := g; end;"
                "begin g2 := g; inner(g2); g := g2; end;"
                "begin g := 7; q; writeln(g); end.");
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, UpLevelLocalsAreConvertedForNestedRoutines) {
  Transformed T("program p; var out1: integer;"
                "procedure outer(var res: integer); var m: integer;"
                "  procedure inner; begin m := m + 5; end;"
                "begin m := 1; inner; inner; res := m; end;"
                "begin outer(out1); writeln(out1); end.");
  RoutineDecl *Outer = T.prog().getMain()->findNested("outer");
  RoutineDecl *Inner = Outer->findNested("inner");
  ASSERT_EQ(Inner->getParams().size(), 1u);
  EXPECT_EQ(Inner->getParams()[0]->getName(), "m");
  EXPECT_EQ(Inner->getParams()[0]->getMode(), ParamMode::Var);
  // outer itself has no *global* effects, so it gains nothing.
  EXPECT_EQ(Outer->getParams().size(), 1u);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, FunctionWithGlobalEffectGetsParamInCallExpr) {
  Transformed T("program p; var g, r: integer;"
                "function next: integer;"
                "begin g := g + 1; next := g; end;"
                "begin g := 0; r := next() + next(); writeln(r, g); end.");
  RoutineDecl *Next = T.prog().getMain()->findNested("next");
  ASSERT_EQ(Next->getParams().size(), 1u);
  EXPECT_EQ(Next->getParams()[0]->getMode(), ParamMode::Var);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalsToParamsTest, SideEffectFreeProgramUntouched) {
  Transformed T(workload::Figure4Buggy);
  EXPECT_EQ(T.Result.Stats.GlobalsConverted, 0u);
  EXPECT_EQ(T.Result.Stats.GotosBroken, 0u);
  expectEquivalent(*T.Orig, T.prog());
}

//===----------------------------------------------------------------------===//
// Global gotos
//===----------------------------------------------------------------------===//

TEST(GlobalGotosTest, Section6ExampleBecomesLocal) {
  Transformed T(workload::Section6GlobalGoto);
  EXPECT_TRUE(hasNonLocalGotos(*T.Orig));
  EXPECT_FALSE(hasNonLocalGotos(T.prog()));
  EXPECT_GT(T.Result.Stats.GotosBroken, 0u);
  EXPECT_GT(T.Result.Stats.ExitParamsAdded, 0u);
}

TEST(GlobalGotosTest, Section6ExampleSemanticsPreserved) {
  Transformed T(workload::Section6GlobalGoto);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(GlobalGotosTest, ExitConditionParamAdded) {
  Transformed T(workload::Section6GlobalGoto);
  RoutineDecl *P = T.prog().getMain()->findNested("p");
  RoutineDecl *Q = P->findNested("q");
  // q gains an exitcond var parameter (plus its original two).
  ASSERT_EQ(Q->getParams().size(), 3u);
  EXPECT_EQ(Q->getParams()[2]->getMode(), ParamMode::Var);
  EXPECT_NE(Q->getParams()[2]->getName().find("exitcond"),
            std::string::npos);
}

TEST(GlobalGotosTest, TwoLevelGotoCascades) {
  // goto from doubly-nested routine straight to the program level: breaking
  // it in `inner` plants a non-local goto in `outer`, which a second round
  // must break again.
  Transformed T("program p; label 5; var r: integer;"
                "procedure outer(var v: integer);"
                "  procedure inner(var w: integer);"
                "  begin w := w + 1; if w > 3 then goto 5; w := w + 10; end;"
                "begin inner(v); v := v + 100; end;"
                "begin r := 10; outer(r); r := r + 1000;"
                "5: writeln(r); end.");
  EXPECT_FALSE(hasNonLocalGotos(T.prog()));
  EXPECT_GE(T.Result.Stats.ExitParamsAdded, 2u);
  expectEquivalent(*T.Orig, T.prog());
  // Also check a run where the goto does NOT fire.
  Transformed T2("program p; label 5; var r: integer;"
                 "procedure outer(var v: integer);"
                 "  procedure inner(var w: integer);"
                 "  begin w := w + 1; if w > 3 then goto 5; w := w + 10; end;"
                 "begin inner(v); v := v + 100; end;"
                 "begin r := 1; outer(r); r := r + 1000;"
                 "5: writeln(r); end.");
  expectEquivalent(*T2.Orig, T2.prog());
}

TEST(GlobalGotosTest, FunctionExpressionGotoIsRejected) {
  auto Orig = compile("program p; label 9; var r: integer;"
                      "function f(x: integer): integer;"
                      "begin if x > 0 then goto 9; f := x; end;"
                      "begin r := f(1); 9: writeln(r); end.");
  DiagnosticsEngine Diags;
  TransformResult Result = transformProgram(*Orig, Diags);
  EXPECT_EQ(Result.Transformed, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("expression position"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Loop escapes
//===----------------------------------------------------------------------===//

TEST(LoopEscapesTest, Section6ExampleRewritten) {
  Transformed T(workload::Section6LoopGoto);
  EXPECT_EQ(T.Result.Stats.LoopsRewritten, 1u);
  std::string Src = printProgram(T.prog());
  EXPECT_NE(Src.find("and not leave"), std::string::npos) << Src;
  EXPECT_NE(Src.find("if leave then"), std::string::npos) << Src;
}

TEST(LoopEscapesTest, Section6ExampleSemanticsPreserved) {
  Transformed T(workload::Section6LoopGoto);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(LoopEscapesTest, LoopWithoutEscapesUntouched) {
  Transformed T("program p; var i, s: integer;"
                "begin s := 0; i := 0;"
                "while i < 5 do begin i := i + 1; s := s + i; end;"
                "writeln(s); end.");
  EXPECT_EQ(T.Result.Stats.LoopsRewritten, 0u);
}

TEST(LoopEscapesTest, MultipleTargetsUseCodeVariable) {
  Transformed T("program p; label 7, 8; var i, s: integer;"
                "begin s := 0; i := 0;"
                "while i < 10 do begin"
                "  i := i + 1;"
                "  if i = 3 then goto 7;"
                "  if s > 100 then goto 8;"
                "  s := s + i;"
                "end;"
                "s := s + 10000;"
                "7: s := s + 1;"
                "8: s := s + 2;"
                "writeln(s); end.");
  EXPECT_EQ(T.Result.Stats.LoopsRewritten, 1u);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(LoopEscapesTest, NestedLoopsEscapingBothLevels) {
  Transformed T("program p; label 9; var i, j, s: integer;"
                "begin s := 0; i := 0;"
                "while i < 4 do begin"
                "  i := i + 1; j := 0;"
                "  while j < 4 do begin"
                "    j := j + 1; s := s + 1;"
                "    if s > 5 then goto 9;"
                "  end;"
                "end;"
                "s := s + 1000;"
                "9: writeln(s); end.");
  EXPECT_EQ(T.Result.Stats.LoopsRewritten, 2u);
  expectEquivalent(*T.Orig, T.prog());
}

TEST(LoopEscapesTest, GotoOutOfLoopAndOutOfProcedure) {
  // The escape leaves the while loop AND the procedure: first the loop
  // rewrite localizes it to the routine, then goto breaking carries it to
  // the caller.
  Transformed T(R"(
program p;
label 3;
var n, acc: integer;
procedure scan(limit: integer; var total: integer);
var i: integer;
begin
  total := 0;
  i := 0;
  while i < limit do begin
    i := i + 1;
    total := total + i;
    if total > 20 then goto 3;
  end;
  total := total + 500;
end;
begin
  n := 100;
  scan(n, acc);
  acc := acc + 7000;
  3: writeln(acc);
end.
)");
  EXPECT_FALSE(hasNonLocalGotos(T.prog()));
  EXPECT_GE(T.Result.Stats.LoopsRewritten, 1u);
  EXPECT_GE(T.Result.Stats.GotosBroken, 1u);
  expectEquivalent(*T.Orig, T.prog());
}

//===----------------------------------------------------------------------===//
// Whole-pipeline properties
//===----------------------------------------------------------------------===//

TEST(TransformPipelineTest, AllPaperProgramsStayEquivalent) {
  for (const char *Src :
       {workload::Figure4Buggy, workload::Figure4Fixed, workload::Figure2,
        workload::Section6Globals, workload::Section6GlobalGoto,
        workload::Section6LoopGoto}) {
    Transformed T(Src);
    std::vector<int64_t> Input;
    if (Src == workload::Figure2)
      Input = {2, 3, 4};
    expectEquivalent(*T.Orig, T.prog(), Input);
  }
}

TEST(TransformPipelineTest, TransformedProgramsAreFullyClean) {
  for (const char *Src :
       {workload::Section6Globals, workload::Section6GlobalGoto,
        workload::Section6LoopGoto}) {
    Transformed T(Src);
    EXPECT_FALSE(hasNonLocalGotos(T.prog()));
    EXPECT_TRUE(isSideEffectFree(T.prog()));
  }
}

TEST(TransformPipelineTest, GrowthFactorBelowTwo) {
  // Paper Section 9: "Small procedures usually grow less than a factor of
  // two after transformations."
  for (const char *Src :
       {workload::Section6Globals, workload::Section6GlobalGoto,
        workload::Section6LoopGoto}) {
    Transformed T(Src);
    unsigned Before = countCodeLines(printProgram(*T.Orig));
    unsigned After = countCodeLines(printProgram(T.prog()));
    EXPECT_LT(After, 2 * Before)
        << printProgram(T.prog());
  }
}

TEST(TransformPipelineTest, TransformationIsIdempotent) {
  Transformed T(workload::Section6Globals);
  DiagnosticsEngine Diags;
  TransformResult Again = transformProgram(T.prog(), Diags);
  ASSERT_TRUE(Again.Transformed) << Diags.str();
  EXPECT_EQ(Again.Stats.GlobalsConverted, 0u);
  EXPECT_EQ(Again.Stats.GotosBroken, 0u);
  EXPECT_EQ(Again.Stats.LoopsRewritten, 0u);
}

} // namespace
