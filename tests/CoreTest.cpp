//===- CoreTest.cpp - GADT debugger tests (paper Sections 3, 5, 7, 8) -----===//

#include "core/GADT.h"

#include "core/InteractiveOracle.h"
#include "core/ReferenceOracle.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "tgen/FrameGen.h"
#include "tgen/SpecParser.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::trace;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

/// Builds the arrsum test database from the *correct* program.
std::pair<std::shared_ptr<tgen::TestSpec>, std::shared_ptr<tgen::TestReportDB>>
arrsumDatabase(const Program &CorrectProgram) {
  DiagnosticsEngine Diags;
  std::shared_ptr<tgen::TestSpec> Spec =
      tgen::parseSpec(workload::ArrsumSpec, Diags);
  EXPECT_TRUE(Spec != nullptr) << Diags.str();
  tgen::FrameSet Frames = tgen::generateFrames(*Spec);
  auto DB = std::make_shared<tgen::TestReportDB>(tgen::runTestSuite(
      CorrectProgram, *Spec, Frames, workload::instantiateArrsumFrame,
      workload::checkArrsumOutcome));
  return {Spec, DB};
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

TEST(OracleTest, ScriptedOracleRepliesInOrder) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = buildExecTree(*Prog, {}, {});
  ExecNode *Dec = nullptr;
  Tree->forEachNode([&](ExecNode *N) {
    if (N->getName() == "decrement")
      Dec = N;
  });
  ASSERT_TRUE(Dec);
  ScriptedOracle O;
  O.answerYes("decrement");
  O.answerNo("decrement", "decrement");
  EXPECT_EQ(O.judge(*Dec).A, Answer::Correct);
  Judgement Second = O.judge(*Dec);
  EXPECT_EQ(Second.A, Answer::Incorrect);
  EXPECT_EQ(Second.WrongOutput, "decrement");
  // Last entry repeats.
  EXPECT_EQ(O.judge(*Dec).A, Answer::Incorrect);
  // Unknown units yield DontKnow.
  ExecNode *Root = Tree->getRoot();
  EXPECT_EQ(O.judge(*Root).A, Answer::DontKnow);
}

TEST(OracleTest, ChainStopsAtFirstAnswerAndCounts) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = buildExecTree(*Prog, {}, {});
  ExecNode *Root = Tree->getRoot();
  LambdaOracle Silent([](const ExecNode &) { return Judgement::dontKnow(); },
                      "silent");
  LambdaOracle Yes(
      [](const ExecNode &) { return Judgement::correct("tester"); });
  LambdaOracle Never([](const ExecNode &) {
    ADD_FAILURE() << "later oracle consulted after an answer";
    return Judgement::dontKnow();
  });
  OracleChain Chain;
  Chain.append(&Silent);
  Chain.append(&Yes);
  Chain.append(&Never);
  EXPECT_EQ(Chain.judge(*Root).A, Answer::Correct);
  EXPECT_EQ(Chain.answersBySource().at("tester"), 1u);
  EXPECT_EQ(Chain.totalAnswers(), 1u);
}

TEST(OracleTest, IntendedProgramOracleJudgesUnits) {
  auto Buggy = compile(workload::Figure4Buggy);
  auto Fixed = compile(workload::Figure4Fixed);
  auto Tree = buildExecTree(*Buggy, {}, {});
  IntendedProgramOracle O(*Fixed);

  ExecNode *Sum1 = nullptr, *Sum2 = nullptr, *Computs = nullptr;
  Tree->forEachNode([&](ExecNode *N) {
    if (N->getName() == "sum1")
      Sum1 = N;
    if (N->getName() == "sum2")
      Sum2 = N;
    if (N->getName() == "computs")
      Computs = N;
  });
  ASSERT_TRUE(Sum1 && Sum2 && Computs);
  EXPECT_EQ(O.judge(*Sum1).A, Answer::Correct);
  Judgement JSum2 = O.judge(*Sum2);
  EXPECT_EQ(JSum2.A, Answer::Incorrect);
  EXPECT_EQ(JSum2.WrongOutput, "s2");
  Judgement JComputs = O.judge(*Computs);
  EXPECT_EQ(JComputs.A, Answer::Incorrect);
  EXPECT_EQ(JComputs.WrongOutput, "r1")
      << "first wrong output variable, as in the paper's dialogue";
}

TEST(OracleTest, IntendedOracleHandlesGlobalsViaPresets) {
  // Trace a transformed program (globals as parameters) and judge with the
  // untransformed intended program: inputs that are not parameters of the
  // reference routine become global presets.
  auto Buggy = compile("program g; var x, z, w: integer;"
                       "procedure p(var y: integer);"
                       "begin y := x + 1; z := y + x; end;" // bug: + not -
                       "begin x := 10; p(w); writeln(z); end.");
  auto Fixed = compile(workload::Section6Globals);
  DiagnosticsEngine Diags;
  auto Xf = transform::transformProgram(*Buggy, Diags);
  ASSERT_TRUE(Xf.Transformed);
  auto Tree = buildExecTree(*Xf.Transformed, {}, {});
  ExecNode *P = nullptr;
  Tree->forEachNode([&](ExecNode *N) {
    if (N->getName() == "p")
      P = N;
  });
  ASSERT_TRUE(P);
  IntendedProgramOracle O(*Fixed);
  Judgement J = O.judge(*P);
  EXPECT_EQ(J.A, Answer::Incorrect);
  EXPECT_EQ(J.WrongOutput, "z");
}

TEST(OracleTest, AssertionOracleSpecificationAnswers) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = buildExecTree(*Prog, {}, {});
  DiagnosticsEngine Diags;
  AssertionOracle O;
  // Complete specifications of the two helper functions.
  ASSERT_TRUE(O.addAssertion("increment", "increment = y + 1",
                             AssertionOracle::Strength::Specification,
                             Diags));
  ASSERT_TRUE(O.addAssertion("decrement", "decrement = y - 1",
                             AssertionOracle::Strength::Specification,
                             Diags));
  ExecNode *Inc = nullptr, *Dec = nullptr;
  Tree->forEachNode([&](ExecNode *N) {
    if (N->getName() == "increment")
      Inc = N;
    if (N->getName() == "decrement")
      Dec = N;
  });
  ASSERT_TRUE(Inc && Dec);
  EXPECT_EQ(O.judge(*Inc).A, Answer::Correct);
  EXPECT_EQ(O.judge(*Dec).A, Answer::Incorrect) << "y+1 violates y-1 spec";
  EXPECT_EQ(O.judge(*Tree->getRoot()).A, Answer::DontKnow);
}

TEST(OracleTest, AssertionOracleNecessaryOnlyRefutes) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = buildExecTree(*Prog, {}, {});
  DiagnosticsEngine Diags;
  AssertionOracle O;
  // A necessary condition that happens to hold for the buggy value too.
  ASSERT_TRUE(O.addAssertion("decrement", "decrement > 0",
                             AssertionOracle::Strength::Necessary, Diags));
  ExecNode *Dec = nullptr;
  Tree->forEachNode([&](ExecNode *N) {
    if (N->getName() == "decrement")
      Dec = N;
  });
  EXPECT_EQ(O.judge(*Dec).A, Answer::DontKnow)
      << "a satisfied necessary condition proves nothing";
}

TEST(OracleTest, AssertionOracleRejectsBadExpression) {
  DiagnosticsEngine Diags;
  AssertionOracle O;
  EXPECT_FALSE(O.addAssertion("f", "x = = 1",
                              AssertionOracle::Strength::Specification,
                              Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(OracleTest, TestDatabaseOracleAnswersCoveredCalls) {
  auto Fixed = compile(workload::Figure4Fixed);
  auto Buggy = compile(workload::Figure4Buggy);
  auto [Spec, DB] = arrsumDatabase(*Fixed);
  TestDatabaseOracle O;
  O.addDatabase(Spec, DB);
  auto Tree = buildExecTree(*Buggy, {}, {});
  ExecNode *Arrsum = nullptr;
  Tree->forEachNode([&](ExecNode *N) {
    if (N->getName() == "arrsum")
      Arrsum = N;
  });
  ASSERT_TRUE(Arrsum);
  Judgement J = O.judge(*Arrsum);
  EXPECT_EQ(J.A, Answer::Correct);
  EXPECT_EQ(J.Source, "test-db");
  EXPECT_EQ(O.lookupsAttempted(), 1u);
  EXPECT_EQ(O.framesMatched(), 1u);
  // Other routines are not covered.
  EXPECT_EQ(O.judge(*Tree->getRoot()).A, Answer::DontKnow);
  // Distrusting tests disables lookups.
  O.setTrustTests(false);
  EXPECT_EQ(O.judge(*Arrsum).A, Answer::DontKnow);
}

TEST(OracleTest, InteractiveOracleParsesAnswers) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = buildExecTree(*Prog, {}, {});
  ExecNode *Root = Tree->getRoot();
  std::istringstream In("yes\nno r1\nn\nmaybe\n");
  std::ostringstream Out;
  InteractiveOracle O(In, Out);
  EXPECT_EQ(O.judge(*Root).A, Answer::Correct);
  Judgement J = O.judge(*Root);
  EXPECT_EQ(J.A, Answer::Incorrect);
  EXPECT_EQ(J.WrongOutput, "r1");
  EXPECT_EQ(O.judge(*Root).A, Answer::Incorrect);
  EXPECT_EQ(O.judge(*Root).A, Answer::DontKnow);
  EXPECT_NE(Out.str().find("main(Out isok: false)?"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The debugger on the paper's example (Section 8)
//===----------------------------------------------------------------------===//

struct Fig4Session {
  std::unique_ptr<Program> Buggy = compile(workload::Figure4Buggy);
  std::unique_ptr<Program> Fixed = compile(workload::Figure4Fixed);
  IntendedProgramOracle User{*Fixed};

  BugReport run(GADTOptions Opts, bool WithTestDB, SessionStats &StatsOut) {
    DiagnosticsEngine Diags;
    GADTSession Session(*Buggy, Opts, Diags);
    EXPECT_TRUE(Session.valid()) << Diags.str();
    if (WithTestDB) {
      auto [Spec, DB] = arrsumDatabase(*Fixed);
      Session.addTestDatabase(Spec, DB);
    }
    BugReport Report = Session.debug(User);
    StatsOut = Session.stats();
    return Report;
  }
};

TEST(DebuggerTest, PureAlgorithmicDebuggingFindsDecrement) {
  Fig4Session S;
  GADTOptions Opts;
  Opts.Debugger.Slicing = SliceMode::None;
  SessionStats Stats;
  BugReport R = S.run(Opts, /*WithTestDB=*/false, Stats);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  // Top-down: sqrtest, arrsum, computs, comput1, partialsums, sum1, sum2,
  // decrement — 8 user interactions.
  EXPECT_EQ(Stats.userQueries(), 8u);
  EXPECT_EQ(Stats.SlicingActivations, 0u);
}

TEST(DebuggerTest, SlicingReducesInteractions) {
  Fig4Session S;
  GADTOptions Opts; // static slicing on by default
  SessionStats Stats;
  BugReport R = S.run(Opts, /*WithTestDB=*/false, Stats);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  // sum1 is sliced away after "error on second output variable" at
  // partialsums: sqrtest, arrsum, computs, comput1, partialsums, sum2,
  // decrement — 7 interactions.
  EXPECT_EQ(Stats.userQueries(), 7u);
  EXPECT_GT(Stats.SlicingActivations, 0u);
  EXPECT_GT(Stats.NodesPruned, 0u);
}

TEST(DebuggerTest, FullGADTMatchesPaperSession) {
  Fig4Session S;
  GADTOptions Opts;
  SessionStats Stats;
  BugReport R = S.run(Opts, /*WithTestDB=*/true, Stats);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  EXPECT_NE(R.Message.find("decrement"), std::string::npos);
  // The arrsum query is answered from the test database without user
  // interaction (paper: "the query arrsum(...) was never shown to the
  // user"): sqrtest, computs, comput1, partialsums, sum2, decrement.
  EXPECT_EQ(Stats.userQueries(), 6u);
  EXPECT_EQ(Stats.AnswersBySource.at("test-db"), 1u);
  EXPECT_EQ(Stats.Unanswered, 0u);
}

TEST(DebuggerTest, DynamicSlicingWorksToo) {
  Fig4Session S;
  GADTOptions Opts;
  Opts.Debugger.Slicing = SliceMode::Dynamic;
  SessionStats Stats;
  BugReport R = S.run(Opts, /*WithTestDB=*/true, Stats);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  EXPECT_EQ(Stats.userQueries(), 6u);
}

TEST(DebuggerTest, AssertionsShortCircuitTheSearch) {
  Fig4Session S;
  DiagnosticsEngine Diags;
  GADTSession Session(*S.Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  ASSERT_TRUE(Session.assertions().addAssertion(
      "decrement", "decrement = y - 1",
      AssertionOracle::Strength::Specification, Diags));
  ASSERT_TRUE(Session.assertions().addAssertion(
      "increment", "increment = y + 1",
      AssertionOracle::Strength::Specification, Diags));
  BugReport R = Session.debug(S.User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  EXPECT_GE(Session.stats().AnswersBySource.at("assertion"), 1u);
  // The assertion answers the decrement query, so the user answers less
  // than in the assertion-free session.
  EXPECT_LT(Session.stats().userQueries(), 7u);
}

TEST(DebuggerTest, DivideAndQueryFindsTheBug) {
  Fig4Session S;
  GADTOptions Opts;
  Opts.Debugger.Strategy = SearchStrategy::DivideAndQuery;
  SessionStats Stats;
  BugReport R = S.run(Opts, false, Stats);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
}

TEST(DebuggerTest, BottomUpFindsTheBug) {
  Fig4Session S;
  GADTOptions Opts;
  Opts.Debugger.Strategy = SearchStrategy::BottomUp;
  Opts.Debugger.Slicing = SliceMode::None;
  SessionStats Stats;
  BugReport R = S.run(Opts, false, Stats);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  // Bottom-up judges leaves first (arrsum, increment, sum1, decrement
  // here) — it can be lucky on deep-left bugs but is exhaustive in the
  // worst case; the scaling bench quantifies this.
  EXPECT_GE(Stats.userQueries(), 4u);
}

TEST(DebuggerTest, CorrectProgramReportsNoBugWhenRootQueried) {
  auto Fixed = compile(workload::Figure4Fixed);
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  Opts.Debugger.AssumeRootIncorrect = false;
  GADTSession Session(*Fixed, Opts, Diags);
  ASSERT_TRUE(Session.valid());
  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  EXPECT_FALSE(R.Found);
}

TEST(DebuggerTest, ScriptedSessionReproducesPaperDialogue) {
  // Drive the exact Section 8 dialogue with a scripted user.
  Fig4Session S;
  DiagnosticsEngine Diags;
  GADTSession Session(*S.Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  auto [Spec, DB] = arrsumDatabase(*S.Fixed);
  Session.addTestDatabase(Spec, DB);

  ScriptedOracle User;
  User.answerNo("sqrtest");
  User.answerNo("computs", "r1");      // "no, error on first output variable"
  User.answerNo("comput1");
  User.answerNo("partialsums", "s2");  // "no, error on second output variable"
  User.answerNo("sum2");
  User.answerNo("decrement");

  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  EXPECT_EQ(Session.stats().userQueries(), 6u);
  EXPECT_EQ(Session.stats().SlicingActivations, 2u);
  EXPECT_EQ(Session.stats().Unanswered, 0u);
}

TEST(DebuggerTest, BugInMainBodyIsLocalizedToMain) {
  auto Buggy = compile("program p; var x, y: integer;"
                       "function dbl(v: integer): integer;"
                       "begin dbl := v * 2; end;"
                       "begin x := dbl(4); y := x + 1; end."); // intends y=x+2
  auto Fixed = compile("program p; var x, y: integer;"
                       "function dbl(v: integer): integer;"
                       "begin dbl := v * 2; end;"
                       "begin x := dbl(4); y := x + 2; end.");
  DiagnosticsEngine Diags;
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "p") << "all callees correct: the bug is in main";
}

TEST(DebuggerTest, LoopUnitsCanBeSearched) {
  // With loop tracing on, the debugger can localize a bug to a loop unit
  // via an assertion refuting the loop's outputs.
  auto Buggy = compile("program p; var i, s: integer;"
                       "begin s := 0;"
                       "for i := 1 to 4 do s := s + i + 1;" // bug: + 1
                       "writeln(s); end.");
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  Opts.TraceLoops = true;
  GADTSession Session(*Buggy, Opts, Diags);
  ASSERT_TRUE(Session.valid());
  ASSERT_TRUE(Session.assertions().addAssertion(
      "p.for#1", "s = 10", AssertionOracle::Strength::Specification, Diags));
  LambdaOracle Mute([](const ExecNode &) { return Judgement::dontKnow(); });
  BugReport R = Session.debug(Mute);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "p.for#1");
}

TEST(DebuggerTest, SubjectRuntimeFailureIsReported) {
  auto Crashing = compile("program p; var x: integer;"
                          "begin x := 1 div 0; end.");
  DiagnosticsEngine Diags;
  GADTSession Session(*Crashing, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  LambdaOracle Mute([](const ExecNode &) { return Judgement::dontKnow(); });
  BugReport R = Session.debug(Mute);
  EXPECT_FALSE(R.Found);
  EXPECT_NE(R.Message.find("division by zero"), std::string::npos);
}

TEST(DebuggerTest, TransformedSessionOnGotoProgram) {
  // End-to-end: a buggy program with global gotos and global side effects
  // is transformed, traced, and debugged against the intended original.
  const char *BuggyText = R"(
program gg;
label 8;
var a, b: integer;
procedure p(v: integer; var r: integer);
label 9;
  procedure q(u: integer; var s: integer);
  begin
    s := u + 1;
    if u > 10 then
      goto 9;
    s := s * 3;
  end;
begin
  r := 0;
  q(v, r);
  r := r + 100;
  9:
  r := r + 1;
  if v > 100 then
    goto 8;
  r := r + 1000;
end;
begin
  a := 5;
  p(a, b);
  8:
  writeln(b);
end.
)";
  // Intended: q multiplies by 2 (the paper's Section 6 example).
  std::string FixedText = BuggyText;
  size_t Pos = FixedText.find("s * 3");
  FixedText.replace(Pos, 5, "s * 2");

  auto Buggy = compile(BuggyText);
  auto Fixed = compile(FixedText);
  DiagnosticsEngine Diags;
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid()) << Diags.str();
  EXPECT_GT(Session.transformStats().GotosBroken, 0u);
  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "q");
}

} // namespace

//===----------------------------------------------------------------------===//
// Memoization and heaviest-first search (appended suite)
//===----------------------------------------------------------------------===//

namespace {

TEST(DebuggerTest, RepeatedIdenticalCallsAreJudgedOnce) {
  // ok(5) runs twice with identical behaviour (once under p1, once under
  // p2); exhaustive bottom-up search must consult the oracle only once.
  const char *BuggyText =
      "program p; var x, y: integer;"
      "function ok(v: integer): integer; begin ok := v + 1; end;"
      "procedure p1(var r: integer); begin r := ok(5); end;"
      "procedure p2(var r: integer); begin r := ok(5) * 2 + 1; end;" // bug
      "begin p1(x); p2(y); writeln(x, ' ', y); end.";
  std::string FixedText = BuggyText;
  FixedText.replace(FixedText.find("* 2 + 1"), 7, "* 2");

  auto Buggy = compile(BuggyText);
  auto Fixed = compile(FixedText.c_str());

  for (bool Memoize : {true, false}) {
    DiagnosticsEngine Diags;
    GADTOptions Opts;
    Opts.Debugger.Strategy = SearchStrategy::BottomUp;
    Opts.Debugger.Slicing = SliceMode::None;
    Opts.Debugger.MemoizeJudgements = Memoize;
    GADTSession Session(*Buggy, Opts, Diags);
    ASSERT_TRUE(Session.valid());
    IntendedProgramOracle User(*Fixed);
    BugReport R = Session.debug(User);
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.UnitName, "p2");
    if (Memoize) {
      EXPECT_GE(Session.stats().MemoHits, 1u)
          << "second ok(5) query answered from the memo";
      EXPECT_EQ(Session.stats().userQueries(), 3u); // ok, p1, ok(memo), p2
    } else {
      EXPECT_EQ(Session.stats().MemoHits, 0u);
      EXPECT_EQ(Session.stats().userQueries(), 4u);
    }
  }
}

TEST(DebuggerTest, HeaviestFirstDescendsIntoTheBigSubtree) {
  // main calls a tiny correct helper and then a long buggy chain; plain
  // top-down asks the helper first, heaviest-first skips straight to the
  // chain.
  workload::ProgramPair Chain = workload::chainProgram(6, 6);
  std::string BuggyText = Chain.Buggy;
  std::string FixedText = Chain.Fixed;
  const char *Helper =
      "procedure tiny(var t: integer); begin t := 1; end;\n";
  // Insert the helper before the main block and call it first.
  auto Insert = [&](std::string &S) {
    size_t Pos = S.rfind("begin");
    S.insert(Pos, Helper);
    Pos = S.find("p1(1, r);");
    S.insert(Pos, "tiny(r);\n  ");
  };
  Insert(BuggyText);
  Insert(FixedText);

  auto Buggy = compile(BuggyText);
  auto Fixed = compile(FixedText.c_str());
  unsigned Queries[2];
  int Index = 0;
  for (SearchStrategy Strategy :
       {SearchStrategy::TopDown, SearchStrategy::TopDownHeaviest}) {
    DiagnosticsEngine Diags;
    GADTOptions Opts;
    Opts.Debugger.Strategy = Strategy;
    Opts.Debugger.Slicing = SliceMode::None;
    GADTSession Session(*Buggy, Opts, Diags);
    ASSERT_TRUE(Session.valid());
    IntendedProgramOracle User(*Fixed);
    BugReport R = Session.debug(User);
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.UnitName, "p6");
    Queries[Index++] = Session.stats().userQueries();
  }
  EXPECT_LT(Queries[1], Queries[0])
      << "heaviest-first saves the query about the tiny helper";
}

} // namespace

//===----------------------------------------------------------------------===//
// Statement-level candidates (appended suite)
//===----------------------------------------------------------------------===//

namespace {

TEST(DebuggerTest, CandidateStatementsNarrowTheBuggyUnit) {
  // The buggy unit computes two outputs from disjoint statements; flagging
  // output r1 must keep only the r1-relevant statements as candidates.
  const char *BuggyText =
      "program p; var a, b: integer;"
      "procedure pair(x: integer; var r1, r2: integer);"
      "var t1, t2: integer;"
      "begin"
      "  t1 := x * 2;"
      "  t2 := x * 3;"
      "  r1 := t1 + 100;" // bug: should be t1 + 1
      "  r2 := t2 + 2;"
      "end;"
      "begin pair(5, a, b); writeln(a, ' ', b); end.";
  std::string FixedText = BuggyText;
  FixedText.replace(FixedText.find("t1 + 100"), 8, "t1 + 1");

  auto Buggy = compile(BuggyText);
  auto Fixed = compile(FixedText.c_str());
  DiagnosticsEngine Diags;
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "pair");
  EXPECT_EQ(R.WrongOutput, "r1");
  ASSERT_FALSE(R.CandidateStmts.empty());

  // Candidates must include the two r1 statements and exclude both r2-only
  // statements.
  std::set<std::string> Rendered;
  for (const pascal::Stmt *S : R.CandidateStmts)
    Rendered.insert(printStmt(*S));
  EXPECT_TRUE(Rendered.count("t1 := x * 2;\n")) << "t1 def is relevant";
  EXPECT_TRUE(Rendered.count("r1 := t1 + 100;\n")) << "the buggy stmt";
  EXPECT_FALSE(Rendered.count("t2 := x * 3;\n")) << "r2-only";
  EXPECT_FALSE(Rendered.count("r2 := t2 + 2;\n")) << "r2-only";
}

TEST(DebuggerTest, CandidatesForFunctionResult) {
  Fig4Session S;
  DiagnosticsEngine Diags;
  GADTSession Session(*S.Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  BugReport R = Session.debug(S.User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "decrement");
  ASSERT_EQ(R.CandidateStmts.size(), 1u)
      << "decrement's body is a single assignment";
  EXPECT_EQ(printStmt(*R.CandidateStmts[0]), "decrement := y + 1;\n");
}

TEST(DebuggerTest, NoCandidatesWithoutSlicing) {
  Fig4Session S;
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  Opts.Debugger.Slicing = SliceMode::None; // no SDG built
  GADTSession Session(*S.Buggy, Opts, Diags);
  ASSERT_TRUE(Session.valid());
  BugReport R = Session.debug(S.User);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.CandidateStmts.empty());
}

} // namespace

//===----------------------------------------------------------------------===//
// Dialogue transcripts (appended suite)
//===----------------------------------------------------------------------===//

namespace {

TEST(DebuggerTest, TranscriptReproducesSection8Dialogue) {
  Fig4Session S;
  DiagnosticsEngine Diags;
  GADTSession Session(*S.Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  auto [Spec, DB] = arrsumDatabase(*S.Fixed);
  Session.addTestDatabase(Spec, DB);
  BugReport R = Session.debug(S.User);
  ASSERT_TRUE(R.Found);

  std::string T = Session.stats().transcript();
  // The exchanges of the paper's Section 8 session, in order.
  const char *Lines[] = {
      "sqrtest(In ary: [1, 2], In n: 2, Out isok: false)? no",
      "arrsum(In a: [1, 2], In n: 2, Out b: 3)? yes  [answered by test-db]",
      "computs(In y: 3, Out r1: 12, Out r2: 9)? no, error on output r1",
      "partialsums(In y: 3, Out s1: 6, Out s2: 6)? no, error on output s2",
      "decrement(In y: 3)=4? no",
  };
  size_t Pos = 0;
  for (const char *Line : Lines) {
    size_t Found = T.find(Line, Pos);
    EXPECT_NE(Found, std::string::npos) << "missing in order: " << Line
                                        << "\n" << T;
    if (Found != std::string::npos)
      Pos = Found;
  }
  // Dialogue length equals judgements plus memo hits.
  EXPECT_EQ(Session.stats().Dialogue.size(),
            Session.stats().Judgements + Session.stats().MemoHits);
}

TEST(DebuggerTest, TranscriptMarksMemoHits) {
  const char *BuggyText =
      "program p; var x, y: integer;"
      "function ok(v: integer): integer; begin ok := v + 1; end;"
      "procedure p1(var r: integer); begin r := ok(5); end;"
      "procedure p2(var r: integer); begin r := ok(5) * 2 + 1; end;"
      "begin p1(x); p2(y); writeln(x, ' ', y); end.";
  std::string FixedText = BuggyText;
  FixedText.replace(FixedText.find("* 2 + 1"), 7, "* 2");
  auto Buggy = compile(BuggyText);
  auto Fixed = compile(FixedText.c_str());
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  Opts.Debugger.Strategy = SearchStrategy::BottomUp;
  Opts.Debugger.Slicing = SliceMode::None;
  GADTSession Session(*Buggy, Opts, Diags);
  ASSERT_TRUE(Session.valid());
  IntendedProgramOracle User(*Fixed);
  Session.debug(User);
  EXPECT_NE(Session.stats().transcript().find("[remembered]"),
            std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Iteration-level localization (appended suite)
//===----------------------------------------------------------------------===//

namespace {

TEST(DebuggerTest, BugLocalizedToASpecificIteration) {
  // Paper Section 6.1: the debugger asks whether "iteration variables are
  // correct for iteration 1, iteration 2 etc." — with iteration units on
  // and a loop-invariant assertion, the bug lands on the exact iteration.
  auto Buggy = compile("program p; var i, s: integer;"
                       "begin s := 0;"
                       "for i := 1 to 5 do"
                       "  if i = 3 then s := s + i + 10"  // bug at i = 3
                       "  else s := s + i;"
                       "writeln(s); end.");
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  Opts.TraceLoops = true;
  Opts.TraceIterations = true;
  GADTSession Session(*Buggy, Opts, Diags);
  ASSERT_TRUE(Session.valid());
  // The invariant after iteration i: s = 1 + 2 + ... + i. It serves as a
  // complete spec for both the loop unit and each iteration unit.
  ASSERT_TRUE(Session.assertions().addAssertion(
      "p.for#1", "s = (i * (i + 1)) div 2",
      AssertionOracle::Strength::Specification, Diags));
  LambdaOracle Mute([](const ExecNode &) { return Judgement::dontKnow(); });
  BugReport R = Session.debug(Mute);
  ASSERT_TRUE(R.Found);
  ASSERT_TRUE(R.Node);
  EXPECT_EQ(R.Node->getKind(), UnitKind::Iteration);
  EXPECT_EQ(R.Node->getIterIndex(), 3u)
      << "the exact buggy iteration, as the paper describes\n"
      << Session.tree()->str();
}

} // namespace
