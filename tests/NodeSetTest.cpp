//===- NodeSetTest.cpp - Dense node-id bitset tests -----------------------===//

#include "support/NodeSet.h"

#include <gtest/gtest.h>

using namespace gadt::support;

namespace {

TEST(NodeSetTest, InsertContainsEraseAroundWordBoundary) {
  NodeSet S;
  for (uint32_t Id : {0u, 1u, 63u, 64u, 65u, 127u, 128u}) {
    EXPECT_FALSE(S.contains(Id));
    S.insert(Id);
    EXPECT_TRUE(S.contains(Id));
  }
  EXPECT_EQ(S.size(), 7u);
  S.erase(64);
  EXPECT_FALSE(S.contains(64));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(65));
  EXPECT_EQ(S.size(), 6u);
}

TEST(NodeSetTest, OutOfRangeIdsTestAbsent) {
  NodeSet S(64);
  EXPECT_FALSE(S.contains(1000000));
  EXPECT_EQ(S.count(1000000), 0u);
  S.erase(1000000); // no-op, must not grow or crash
  EXPECT_TRUE(S.empty());
}

TEST(NodeSetTest, InsertRangeSpansWords) {
  NodeSet S;
  S.insertRange(10, 200);
  EXPECT_EQ(S.size(), 190u);
  EXPECT_FALSE(S.contains(9));
  EXPECT_TRUE(S.contains(10));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_TRUE(S.contains(199));
  EXPECT_FALSE(S.contains(200));
}

TEST(NodeSetTest, RangeOpsWithinOneWord) {
  NodeSet S;
  S.insertRange(5, 9); // {5,6,7,8}
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{5, 6, 7, 8}));
  EXPECT_EQ(S.countRange(6, 8), 2u);
  S.eraseRange(6, 8);
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{5, 8}));
}

TEST(NodeSetTest, RangeEndOnWordBoundary) {
  // E % 64 == 0 exercises the all-ones last mask.
  NodeSet S;
  S.insertRange(64, 128);
  EXPECT_EQ(S.size(), 64u);
  EXPECT_EQ(S.countRange(64, 128), 64u);
  EXPECT_EQ(S.countRange(0, 64), 0u);
  S.eraseRange(64, 128);
  EXPECT_TRUE(S.empty());
}

TEST(NodeSetTest, EmptyRangesAreNoOps) {
  NodeSet S;
  S.insertRange(50, 50);
  S.insertRange(60, 50);
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.countRange(10, 10), 0u);
}

TEST(NodeSetTest, RangeOpsClampToCapacity) {
  NodeSet S(70);
  S.insertRange(0, 70);
  // Erase and count past the allocated words: clamped, not resized.
  S.eraseRange(65, 1000000);
  EXPECT_EQ(S.countRange(0, 1000000), 65u);
  EXPECT_TRUE(S.contains(64));
  EXPECT_FALSE(S.contains(65));
}

TEST(NodeSetTest, IntersectWith) {
  NodeSet A, B;
  A.insertRange(0, 100);
  B.insertRange(50, 150);
  A.intersectWith(B);
  EXPECT_EQ(A.countRange(0, 200), 50u);
  EXPECT_FALSE(A.contains(49));
  EXPECT_TRUE(A.contains(50));
  EXPECT_TRUE(A.contains(99));
  EXPECT_FALSE(A.contains(100));
}

TEST(NodeSetTest, IntersectRangeWithLeavesOutsideUntouched) {
  NodeSet Active;
  Active.insertRange(1, 300);
  NodeSet Kept;
  Kept.insert(100);
  Kept.insert(150);
  Active.intersectRangeWith(Kept, 100, 200);
  EXPECT_EQ(Active.countRange(100, 200), 2u);
  // Ids below 100 and from 200 on are untouched.
  EXPECT_EQ(Active.countRange(1, 100), 99u);
  EXPECT_EQ(Active.countRange(200, 300), 100u);
}

TEST(NodeSetTest, IntersectRangeWithSmallerOtherClearsTail) {
  NodeSet Active;
  Active.insertRange(0, 256);
  NodeSet Tiny(32); // no bits set, one word allocated
  Active.intersectRangeWith(Tiny, 64, 256);
  EXPECT_EQ(Active.countRange(0, 256), 64u);
}

TEST(NodeSetTest, EqualityIsCapacityInsensitive) {
  NodeSet A(1000), B;
  A.insert(5);
  B.insert(5);
  EXPECT_EQ(A, B);
  B.insert(700);
  EXPECT_NE(A, B);
  B.erase(700); // trailing zero words must not break equality
  EXPECT_EQ(A, B);
}

TEST(NodeSetTest, IdsAscending) {
  NodeSet S;
  for (uint32_t Id : {200u, 3u, 64u, 63u, 1u})
    S.insert(Id);
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{1, 3, 63, 64, 200}));
}

} // namespace
