//===- TGenTest.cpp - T-GEN category-partition tests (paper Figure 1) -----===//

#include "tgen/Classifier.h"
#include "tgen/ConstEval.h"
#include "tgen/FrameGen.h"
#include "tgen/Generator.h"
#include "tgen/ReportDB.h"
#include "tgen/SpecParser.h"

#include "pascal/Frontend.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::tgen;

namespace {

std::unique_ptr<TestSpec> parse(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Spec = parseSpec(Src, Diags);
  EXPECT_TRUE(Spec != nullptr) << Diags.str();
  return Spec;
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(SpecParserTest, ParsesArrsumSpec) {
  auto Spec = parse(workload::ArrsumSpec);
  ASSERT_TRUE(Spec);
  EXPECT_EQ(Spec->TestName, "arrsum");
  ASSERT_EQ(Spec->Categories.size(), 3u);
  EXPECT_EQ(Spec->Categories[0].Name, "size_of_array");
  EXPECT_EQ(Spec->Categories[0].Choices.size(), 4u);
  EXPECT_TRUE(Spec->Categories[0].Choices[0].Single);
  EXPECT_EQ(Spec->Categories[1].Choices[2].Properties,
            std::vector<std::string>{"mixed"});
  ASSERT_EQ(Spec->Scripts.size(), 2u);
  EXPECT_EQ(Spec->Scripts[0].Name, "script_1");
  ASSERT_EQ(Spec->Results.size(), 1u);
}

TEST(SpecParserTest, SelectorExpressions) {
  auto Spec = parse("test t;"
                    "category c1; a : property P1; b : ;"
                    "category c2;"
                    "  x : if P1 and not P2;"
                    "  y : if (P1 or P2);"
                    "end.");
  ASSERT_TRUE(Spec);
  const Choice &X = Spec->Categories[1].Choices[0];
  std::set<std::string> Props = {"p1"};
  EXPECT_TRUE(X.If.eval(Props));
  Props.insert("p2");
  EXPECT_FALSE(X.If.eval(Props));
}

TEST(SpecParserTest, ErrorMarker) {
  auto Spec = parse("test t;"
                    "category c; good : ; bad : property ERROR when x < 0;"
                    "end.");
  ASSERT_TRUE(Spec);
  EXPECT_TRUE(Spec->Categories[0].Choices[1].Error);
  EXPECT_FALSE(Spec->Categories[0].Choices[0].Error);
}

TEST(SpecParserTest, RejectsMissingTestHeader) {
  DiagnosticsEngine Diags;
  EXPECT_EQ(parseSpec("category c; a : ; end.", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SpecParserTest, RejectsEmptyCategory) {
  DiagnosticsEngine Diags;
  EXPECT_EQ(parseSpec("test t; category c; end.", Diags), nullptr);
}

TEST(SpecParserTest, RejectsMissingEnd) {
  DiagnosticsEngine Diags;
  EXPECT_EQ(parseSpec("test t; category c; a : ;", Diags), nullptr);
}

//===----------------------------------------------------------------------===//
// Closed expression evaluation
//===----------------------------------------------------------------------===//

TEST(ConstEvalTest, ArithmeticAndComparison) {
  DiagnosticsEngine Diags;
  auto Spec = parseSpec(
      "test t; category c; a : when (n + 2) * 3 = 12 and n mod 2 = 0; end.",
      Diags);
  ASSERT_TRUE(Spec);
  const Expr *E = Spec->Categories[0].Choices[0].When.get();
  ValueEnv Env;
  Env["n"] = Value::makeInt(2);
  auto R = evalPredicate(E, Env);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
  Env["n"] = Value::makeInt(3);
  R = evalPredicate(E, Env);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
}

TEST(ConstEvalTest, UnboundNameIsUndefined) {
  DiagnosticsEngine Diags;
  auto Spec =
      parseSpec("test t; category c; a : when missing > 0; end.", Diags);
  ASSERT_TRUE(Spec);
  ValueEnv Env;
  EXPECT_FALSE(
      evalPredicate(Spec->Categories[0].Choices[0].When.get(), Env));
}

TEST(ConstEvalTest, DivisionByZeroIsUndefined) {
  DiagnosticsEngine Diags;
  auto Spec =
      parseSpec("test t; category c; a : when 1 div n = 1; end.", Diags);
  ASSERT_TRUE(Spec);
  ValueEnv Env;
  Env["n"] = Value::makeInt(0);
  EXPECT_FALSE(
      evalPredicate(Spec->Categories[0].Choices[0].When.get(), Env));
}

//===----------------------------------------------------------------------===//
// Frame generation (paper Figure 1)
//===----------------------------------------------------------------------===//

struct ArrsumFrames {
  std::unique_ptr<TestSpec> Spec;
  FrameSet Frames;

  ArrsumFrames() {
    Spec = parse(workload::ArrsumSpec);
    Frames = generateFrames(*Spec);
  }

  const TestFrame *find(const std::string &Code) const {
    for (const TestFrame &F : Frames.Frames)
      if (F.encode() == Code)
        return &F;
    return nullptr;
  }
};

TEST(FrameGenTest, ArrsumFrameUniverse) {
  ArrsumFrames A;
  // 6 ordinary frames + 2 SINGLE frames.
  EXPECT_EQ(A.Frames.Frames.size(), 8u);
  for (const char *Code :
       {"two.positive.small", "two.negative.small", "more.positive.small",
        "more.negative.small", "more.mixed.large", "more.mixed.average",
        "zero.positive.small", "one.positive.small"})
    EXPECT_TRUE(A.find(Code) != nullptr) << Code;
}

TEST(FrameGenTest, Script1MatchesPaper) {
  // Paper: "script_1 contains two frames: (more, mixed, large) and
  // (more, mixed, average)".
  ArrsumFrames A;
  const std::vector<size_t> *S1 = A.Frames.framesOfScript("script_1");
  ASSERT_TRUE(S1);
  ASSERT_EQ(S1->size(), 2u);
  std::set<std::string> Codes;
  for (size_t I : *S1)
    Codes.insert(A.Frames.Frames[I].encode());
  EXPECT_TRUE(Codes.count("more.mixed.large"));
  EXPECT_TRUE(Codes.count("more.mixed.average"));
}

TEST(FrameGenTest, Script2GetsTheRest) {
  ArrsumFrames A;
  const std::vector<size_t> *S2 = A.Frames.framesOfScript("script_2");
  ASSERT_TRUE(S2);
  EXPECT_EQ(S2->size(), 6u);
}

TEST(FrameGenTest, SinglesGenerateExactlyOneFrameEach) {
  ArrsumFrames A;
  unsigned Zero = 0, One = 0;
  for (const TestFrame &F : A.Frames.Frames) {
    if (F.ChoiceNames[0] == "zero")
      ++Zero;
    if (F.ChoiceNames[0] == "one")
      ++One;
  }
  EXPECT_EQ(Zero, 1u);
  EXPECT_EQ(One, 1u);
}

TEST(FrameGenTest, ResultBucketsFollowSelectors) {
  ArrsumFrames A;
  for (size_t I = 0; I != A.Frames.Frames.size(); ++I) {
    bool Mixed = A.Frames.Frames[I].Properties.count("mixed") != 0;
    EXPECT_EQ(A.Frames.ResultOf[I], Mixed ? "result_1" : "") << I;
  }
}

TEST(FrameGenTest, SelectorsPruneInconsistentCombinations) {
  ArrsumFrames A;
  // mixed requires MORE: no "two.mixed.*" frame may exist.
  for (const TestFrame &F : A.Frames.Frames)
    EXPECT_FALSE(F.ChoiceNames[0] == "two" && F.ChoiceNames[1] == "mixed");
}

TEST(FrameGenTest, ErrorChoiceYieldsOneFrame) {
  auto Spec = parse("test t;"
                    "category size; ok : ; neg : property ERROR;"
                    "category kind; a : ; b : ;"
                    "end.");
  FrameSet FS = generateFrames(*Spec);
  // ok x {a,b} = 2 ordinary + 1 error frame.
  ASSERT_EQ(FS.Frames.size(), 3u);
  unsigned Errors = 0;
  for (const TestFrame &F : FS.Frames)
    Errors += F.IsError;
  EXPECT_EQ(Errors, 1u);
}

TEST(FrameGenTest, FrameEncodingAndDisplay) {
  ArrsumFrames A;
  const TestFrame *F = A.find("more.mixed.large");
  ASSERT_TRUE(F);
  EXPECT_EQ(F->str(), "(more, mixed, large)");
}

//===----------------------------------------------------------------------===//
// Classification (automatic frame selection)
//===----------------------------------------------------------------------===//

TEST(ClassifierTest, FeaturesFromBindings) {
  ArrayVal Arr;
  Arr.Lo = 1;
  Arr.Hi = 3;
  Arr.Elems = {4, -2, 9};
  std::vector<Binding> Inputs = {{"a", Value::makeArray(Arr)},
                                 {"n", Value::makeInt(3)}};
  ValueEnv Env = extractFeatures(Inputs);
  EXPECT_EQ(Env["n"].asInt(), 3);
  EXPECT_EQ(Env["a_len"].asInt(), 3);
  EXPECT_EQ(Env["a_min"].asInt(), -2);
  EXPECT_EQ(Env["a_max"].asInt(), 9);
  EXPECT_EQ(Env["a_spread"].asInt(), 11);
}

TEST(ClassifierTest, ClassifiesPaperExampleInputs) {
  ArrsumFrames A;
  ArrayVal Arr;
  Arr.Lo = 1;
  Arr.Hi = 2;
  Arr.Elems = {1, 2};
  std::vector<Binding> Inputs = {{"a", Value::makeArray(Arr)},
                                 {"n", Value::makeInt(2)}};
  auto Frame = classifyInputs(*A.Spec, Inputs);
  ASSERT_TRUE(Frame.has_value());
  EXPECT_EQ(Frame->encode(), "two.positive.small");
}

TEST(ClassifierTest, InstantiationRoundTripsForAllFrames) {
  // The frame instantiator and the classifier must agree: generating
  // concrete inputs for a frame and classifying them yields the frame.
  ArrsumFrames A;
  for (const TestFrame &F : A.Frames.Frames) {
    auto Args = workload::instantiateArrsumFrame(F);
    ASSERT_TRUE(Args.has_value()) << F.encode();
    std::vector<Binding> Inputs = {{"a", (*Args)[0]}, {"n", (*Args)[1]}};
    auto Back = classifyInputs(*A.Spec, Inputs);
    ASSERT_TRUE(Back.has_value()) << F.encode();
    EXPECT_EQ(Back->encode(), F.encode());
  }
}

TEST(ClassifierTest, FailsWhenNoChoiceMatches) {
  ArrsumFrames A;
  // n = -1 matches no size choice.
  std::vector<Binding> Inputs = {{"n", Value::makeInt(-1)}};
  EXPECT_FALSE(classifyInputs(*A.Spec, Inputs).has_value());
}

//===----------------------------------------------------------------------===//
// Test execution and the report database
//===----------------------------------------------------------------------===//

struct ArrsumSuite {
  std::unique_ptr<Program> Prog;
  ArrsumFrames A;

  explicit ArrsumSuite(const char *Source) {
    DiagnosticsEngine Diags;
    Prog = parseAndCheck(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
  }

  TestReportDB run() {
    return runTestSuite(*Prog, *A.Spec, A.Frames,
                        workload::instantiateArrsumFrame,
                        workload::checkArrsumOutcome);
  }
};

TEST(ReportDBTest, CorrectArrsumPassesAllFrames) {
  ArrsumSuite S(workload::Figure4Fixed);
  TestReportDB DB = S.run();
  EXPECT_EQ(DB.failCount(), 0u);
  EXPECT_EQ(DB.passCount(), 8u);
  EXPECT_EQ(DB.verdict("two.positive.small"), Verdict::Pass);
  EXPECT_EQ(DB.verdict("more.mixed.large"), Verdict::Pass);
  EXPECT_EQ(DB.verdict("nonexistent.frame"), Verdict::Untested);
}

TEST(ReportDBTest, BuggyArrsumFailsFrames) {
  // Plant a bug in arrsum itself: start the sum at 1 instead of 0.
  std::string Src = workload::Figure4Fixed;
  size_t Pos = Src.find("b := 0;");
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, 7, "b := 1;");
  ArrsumSuite S(Src.c_str());
  TestReportDB DB = S.run();
  EXPECT_EQ(DB.passCount(), 0u);
  EXPECT_EQ(DB.failCount(), 8u);
  EXPECT_EQ(DB.verdict("two.positive.small"), Verdict::Fail);
}

TEST(ReportDBTest, VerdictAggregation) {
  TestReportDB DB;
  DB.record({"f1", "s", true, ""});
  DB.record({"f1", "s", true, ""});
  DB.record({"f2", "s", true, ""});
  DB.record({"f2", "s", false, "bad"});
  EXPECT_EQ(DB.verdict("f1"), Verdict::Pass);
  EXPECT_EQ(DB.verdict("f2"), Verdict::Fail);
  EXPECT_EQ(DB.verdict("f3"), Verdict::Untested);
  EXPECT_EQ(DB.passCount(), 3u);
  EXPECT_EQ(DB.failCount(), 1u);
  EXPECT_NE(DB.str().find("f2: fail"), std::string::npos);
}

TEST(ReportDBTest, RecordsCarryScripts) {
  ArrsumSuite S(workload::Figure4Fixed);
  TestReportDB DB = S.run();
  unsigned Script1 = 0;
  for (const TestCaseRecord &R : DB.records())
    if (R.Script == "script_1")
      ++Script1;
  EXPECT_EQ(Script1, 2u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec-driven test-case generation (the `params` / `gen` extension)
//===----------------------------------------------------------------------===//

namespace {



TEST(GeneratorTest, ParsesParamsAndGenClauses) {
  auto Spec = parse(workload::ArrsumSpecWithGens);
  ASSERT_TRUE(Spec);
  ASSERT_EQ(Spec->Params.size(), 3u);
  EXPECT_EQ(Spec->Params[0].Name, "a");
  EXPECT_FALSE(Spec->Params[0].IsOut);
  EXPECT_EQ(Spec->Params[2].Name, "b");
  EXPECT_TRUE(Spec->Params[2].IsOut);
  EXPECT_TRUE(Spec->hasGenerators());
  // size_of_array.more carries `gen n := 7`.
  const Choice &More = Spec->Categories[0].Choices[3];
  ASSERT_EQ(More.Gens.size(), 1u);
  EXPECT_EQ(More.Gens[0].first, "n");
}

TEST(GeneratorTest, EvalGenExprBuiltins) {
  DiagnosticsEngine Diags;
  auto Spec = parseSpec("test t; category c;"
                        "a : gen x := fill(3, i * i) , y := max(2, 5) ,"
                        "        z := min(2, 5) , w := abs(0 - 4);"
                        "end.",
                        Diags);
  ASSERT_TRUE(Spec != nullptr) << Diags.str();
  const auto &Gens = Spec->Categories[0].Choices[0].Gens;
  ASSERT_EQ(Gens.size(), 4u);
  ValueEnv Env;
  auto X = evalGenExpr(Gens[0].second.get(), Env);
  ASSERT_TRUE(X && X->isArray());
  EXPECT_EQ(X->asArray().Elems, (std::vector<int64_t>{1, 4, 9}));
  EXPECT_EQ(evalGenExpr(Gens[1].second.get(), Env)->asInt(), 5);
  EXPECT_EQ(evalGenExpr(Gens[2].second.get(), Env)->asInt(), 2);
  EXPECT_EQ(evalGenExpr(Gens[3].second.get(), Env)->asInt(), 4);
}

TEST(GeneratorTest, FillSeesEarlierBindings) {
  auto Spec = parse(workload::ArrsumSpecWithGens);
  FrameSet Frames = generateFrames(*Spec);
  for (const TestFrame &F : Frames.Frames) {
    auto Args = instantiateFrame(*Spec, F);
    ASSERT_TRUE(Args.has_value()) << F.encode();
    ASSERT_EQ(Args->size(), 3u);
    EXPECT_TRUE((*Args)[0].isArray()) << F.encode();
    EXPECT_TRUE((*Args)[1].isInt()) << F.encode();
    EXPECT_TRUE((*Args)[2].isUnset()) << "out param stays unset";
  }
}

TEST(GeneratorTest, SpecDrivenInstantiationRoundTrips) {
  // The generated inputs must classify back to their own frame — the same
  // invariant the handwritten instantiator satisfies.
  auto Spec = parse(workload::ArrsumSpecWithGens);
  FrameSet Frames = generateFrames(*Spec);
  EXPECT_EQ(Frames.Frames.size(), 8u);
  for (const TestFrame &F : Frames.Frames) {
    auto Args = instantiateFrame(*Spec, F);
    ASSERT_TRUE(Args.has_value()) << F.encode();
    std::vector<Binding> Inputs = {{"a", (*Args)[0]}, {"n", (*Args)[1]}};
    auto Back = classifyInputs(*Spec, Inputs);
    ASSERT_TRUE(Back.has_value()) << F.encode();
    EXPECT_EQ(Back->encode(), F.encode());
  }
}

TEST(GeneratorTest, SpecDrivenSuiteMatchesCallbackSuite) {
  auto Spec = parse(workload::ArrsumSpecWithGens);
  FrameSet Frames = generateFrames(*Spec);
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(workload::Figure4Fixed, Diags);
  ASSERT_TRUE(Prog);
  TestReportDB DB =
      runTestSuite(*Prog, *Spec, Frames, specInstantiator(*Spec),
                   workload::checkArrsumOutcome);
  EXPECT_EQ(DB.passCount(), 8u);
  EXPECT_EQ(DB.failCount(), 0u);
}

TEST(GeneratorTest, SpecWithoutGeneratorsDeclines) {
  auto Spec = parse(workload::ArrsumSpec);
  EXPECT_FALSE(Spec->hasGenerators());
  FrameSet Frames = generateFrames(*Spec);
  EXPECT_FALSE(instantiateFrame(*Spec, Frames.Frames[0]).has_value());
}

TEST(GeneratorTest, UnboundInputParameterFails) {
  DiagnosticsEngine Diags;
  auto Spec = parseSpec("test t; params x, y;"
                        "category c; a : gen x := 1; end.",
                        Diags);
  ASSERT_TRUE(Spec != nullptr) << Diags.str();
  FrameSet Frames = generateFrames(*Spec);
  ASSERT_EQ(Frames.Frames.size(), 1u);
  EXPECT_FALSE(instantiateFrame(*Spec, Frames.Frames[0]).has_value())
      << "y is never generated";
}

TEST(GeneratorTest, UnknownBuiltinFails) {
  DiagnosticsEngine Diags;
  auto Spec = parseSpec("test t; params x;"
                        "category c; a : gen x := frobnicate(1); end.",
                        Diags);
  ASSERT_TRUE(Spec != nullptr) << Diags.str();
  FrameSet Frames = generateFrames(*Spec);
  EXPECT_FALSE(instantiateFrame(*Spec, Frames.Frames[0]).has_value());
}

} // namespace
