//===- InterpreterTest.cpp - Interpreter unit tests -----------------------===//

#include "interp/Interpreter.h"

#include "pascal/Frontend.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

ExecResult runProgram(std::string_view Src, std::vector<int64_t> Input = {}) {
  auto Prog = compile(Src);
  if (!Prog)
    return {};
  Interpreter I(*Prog);
  I.setInput(std::move(Input));
  return I.run();
}

const Value *findGlobal(const ExecResult &R, const std::string &Name) {
  for (const Binding &B : R.FinalGlobals)
    if (B.Name == Name)
      return &B.V;
  return nullptr;
}

TEST(InterpreterTest, Arithmetic) {
  auto R = runProgram("program p; var x: integer;"
                      "begin x := (2 + 3) * 4 - 10 div 3 + 7 mod 4; end.");
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_EQ(findGlobal(R, "x")->asInt(), 20 - 3 + 3);
}

TEST(InterpreterTest, BooleanLogic) {
  auto R = runProgram("program p; var a, b, c: boolean;"
                      "begin a := true and not false;"
                      "b := (1 < 2) or (3 = 4); c := a and b; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(findGlobal(R, "c")->asBool());
}

TEST(InterpreterTest, IfElse) {
  auto R = runProgram("program p; var x, y: integer;"
                      "begin x := 5;"
                      "if x > 3 then y := 1 else y := 2; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "y")->asInt(), 1);
}

TEST(InterpreterTest, WhileLoop) {
  auto R = runProgram("program p; var i, s: integer;"
                      "begin i := 0; s := 0;"
                      "while i < 5 do begin i := i + 1; s := s + i; end;"
                      "end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "s")->asInt(), 15);
}

TEST(InterpreterTest, RepeatLoopRunsAtLeastOnce) {
  auto R = runProgram("program p; var i: integer;"
                      "begin i := 10; repeat i := i + 1; until i > 0; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "i")->asInt(), 11);
}

TEST(InterpreterTest, ForLoopUpAndDown) {
  auto R = runProgram("program p; var i, up, down: integer;"
                      "begin up := 0; down := 0;"
                      "for i := 1 to 4 do up := up + i;"
                      "for i := 4 downto 1 do down := down * 10 + i; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "up")->asInt(), 10);
  EXPECT_EQ(findGlobal(R, "down")->asInt(), 4321);
}

TEST(InterpreterTest, ForLoopEmptyRange) {
  auto R = runProgram("program p; var i, s: integer;"
                      "begin s := 7; for i := 5 to 1 do s := 0; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "s")->asInt(), 7);
}

TEST(InterpreterTest, ArraysAndIndexing) {
  auto R = runProgram("program p; var a: array[1..5] of integer;"
                      "i, s: integer;"
                      "begin for i := 1 to 5 do a[i] := i * i;"
                      "s := a[1] + a[5]; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "s")->asInt(), 26);
}

TEST(InterpreterTest, ArrayValueSemanticsOnAssignment) {
  auto R = runProgram("program p; var a, b: array[1..2] of integer;"
                      "x: integer;"
                      "begin a[1] := 1; b := a; b[1] := 99; x := a[1]; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "x")->asInt(), 1);
}

TEST(InterpreterTest, ValueParamsCopyArrays) {
  auto R = runProgram("program p; type arr = array[1..2] of integer;"
                      "var a: arr; x: integer;"
                      "procedure q(v: arr); begin v[1] := 42; end;"
                      "begin a[1] := 7; q(a); x := a[1]; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "x")->asInt(), 7);
}

TEST(InterpreterTest, VarParamsAlias) {
  auto R = runProgram("program p; var x: integer;"
                      "procedure bump(var v: integer);"
                      "begin v := v + 1; end;"
                      "begin x := 1; bump(x); bump(x); end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "x")->asInt(), 3);
}

TEST(InterpreterTest, FunctionsReturnValues) {
  auto R = runProgram("program p; var r: integer;"
                      "function sq(x: integer): integer;"
                      "begin sq := x * x; end;"
                      "begin r := sq(6); end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "r")->asInt(), 36);
}

TEST(InterpreterTest, RecursiveFactorial) {
  auto R = runProgram("program p; var r: integer;"
                      "function fact(n: integer): integer;"
                      "begin if n <= 1 then fact := 1 "
                      "else fact := n * fact(n - 1); end;"
                      "begin r := fact(6); end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "r")->asInt(), 720);
}

TEST(InterpreterTest, NestedRoutinesSeeEnclosingLocals) {
  auto R = runProgram("program p; var g: integer;"
                      "procedure outer;"
                      "var m: integer;"
                      "  procedure inner; begin m := m + 5; end;"
                      "begin m := 1; inner; inner; g := m; end;"
                      "begin outer; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "g")->asInt(), 11);
}

TEST(InterpreterTest, GlobalSideEffects) {
  auto R = runProgram(workload::Section6Globals);
  ASSERT_TRUE(R.Ok);
  // p(w): w := x + 1 = 11; z := w - x = 1.
  EXPECT_EQ(findGlobal(R, "w")->asInt(), 11);
  EXPECT_EQ(findGlobal(R, "z")->asInt(), 1);
  EXPECT_EQ(R.Output, "1\n");
}

TEST(InterpreterTest, ReadAndWrite) {
  auto R = runProgram("program p; var x, y: integer;"
                      "begin read(x, y); writeln(x + y); write(x); end.",
                      {3, 4});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Output, "7\n3");
}

TEST(InterpreterTest, WriteStrings) {
  auto R = runProgram("program p; var x: integer;"
                      "begin x := 5; writeln('x = ', x); end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Output, "x = 5\n");
}

TEST(InterpreterTest, LocalGotoForward) {
  auto R = runProgram("program p; label 9; var x: integer;"
                      "begin x := 1; goto 9; x := 2; 9: x := x + 10; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "x")->asInt(), 11);
}

TEST(InterpreterTest, LocalGotoBackwardLoops) {
  auto R = runProgram("program p; label 1; var i: integer;"
                      "begin i := 0;"
                      "1: i := i + 1;"
                      "if i < 5 then goto 1; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "i")->asInt(), 5);
}

TEST(InterpreterTest, GotoOutOfLoop) {
  auto R = runProgram(workload::Section6LoopGoto);
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  // total climbs 1+1, 2+1, ... until > 50 inside loop, then goto 9 adds 7.
  // i: 1..9 gives total 54 -> first >50 at total=54? Let's just check the
  // +500 branch was skipped: result must be < 500.
  const Value *Acc = findGlobal(R, "acc");
  ASSERT_TRUE(Acc);
  EXPECT_LT(Acc->asInt(), 500);
  EXPECT_EQ(R.Output, std::to_string(Acc->asInt()) + "\n");
}

TEST(InterpreterTest, NonLocalGotoUnwindsActivations) {
  auto R = runProgram(workload::Section6GlobalGoto);
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  // v=20: q sets r(=s)=21, u>10 so goto 9 skips both *2 and +100;
  // then r := r + 1 = 22; v <= 100 so r := r + 1000 = 1022.
  EXPECT_EQ(findGlobal(R, "b")->asInt(), 1022);
  EXPECT_EQ(R.Output, "1022\n");
}

TEST(InterpreterTest, Figure4BuggyProducesFalse) {
  auto R = runProgram(workload::Figure4Buggy);
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_FALSE(findGlobal(R, "isok")->asBool());
}

TEST(InterpreterTest, Figure4FixedProducesTrue) {
  auto R = runProgram(workload::Figure4Fixed);
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_TRUE(findGlobal(R, "isok")->asBool());
}

// Runtime errors -------------------------------------------------------------

TEST(InterpreterTest, DivisionByZeroFails) {
  auto R = runProgram("program p; var x: integer; begin x := 1 div 0; end.");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("division by zero"), std::string::npos);
}

TEST(InterpreterTest, ArrayIndexOutOfBoundsFails) {
  auto R = runProgram("program p; var a: array[1..3] of integer; x: integer;"
                      "begin x := 7; a[x] := 1; end.");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("out of bounds"), std::string::npos);
}

TEST(InterpreterTest, ReadPastEndOfInputFails) {
  auto R = runProgram("program p; var x: integer; begin read(x); end.", {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("read past end"), std::string::npos);
}

TEST(InterpreterTest, InfiniteLoopHitsStepLimit) {
  auto Prog = compile("program p; var x: integer;"
                      "begin while true do x := x + 1; end.");
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  Interpreter I(*Prog, Opts);
  auto R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("step limit"), std::string::npos);
}

// Direct routine calls -------------------------------------------------------

TEST(InterpreterTest, CallRoutineDirectly) {
  auto Prog = compile(workload::Figure4Buggy);
  Interpreter I(*Prog);
  ArrayVal A;
  A.Lo = 1;
  A.Hi = 3;
  A.Elems = {10, 20, 30};
  auto Out = I.callRoutine(
      "arrsum", {Value::makeArray(A), Value::makeInt(3), Value()});
  ASSERT_TRUE(Out.Ok) << Out.Error.Message;
  ASSERT_EQ(Out.Outputs.size(), 1u);
  EXPECT_EQ(Out.Outputs[0].Name, "b");
  EXPECT_EQ(Out.Outputs[0].V.asInt(), 60);
}

TEST(InterpreterTest, CallFunctionDirectly) {
  auto Prog = compile(workload::Figure4Buggy);
  Interpreter I(*Prog);
  auto Out = I.callRoutine("decrement", {Value::makeInt(3)});
  ASSERT_TRUE(Out.Ok);
  ASSERT_EQ(Out.Outputs.size(), 1u);
  EXPECT_EQ(Out.Outputs[0].Name, "decrement");
  EXPECT_EQ(Out.Outputs[0].V.asInt(), 4); // the planted bug
}

TEST(InterpreterTest, CallUnknownRoutineFails) {
  auto Prog = compile(workload::Figure4Buggy);
  Interpreter I(*Prog);
  auto Out = I.callRoutine("nosuch", {});
  EXPECT_FALSE(Out.Ok);
}

} // namespace

//===----------------------------------------------------------------------===//
// Constants and mutual recursion (appended suite)
//===----------------------------------------------------------------------===//

namespace {

TEST(InterpreterTest, ConstantsEvaluate) {
  auto R = runProgram("program p; const base = 100; step = -5;"
                      "var x, i: integer;"
                      "begin x := base;"
                      "for i := 1 to 3 do x := x + step; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "x")->asInt(), 85);
}

TEST(InterpreterTest, MutualRecursionThroughForward) {
  auto R = runProgram(
      "program p; var a, b: integer;"
      "function isodd(n: integer): boolean; forward;"
      "function iseven(n: integer): boolean;"
      "begin if n = 0 then iseven := true else iseven := isodd(n - 1);"
      "end;"
      "function isodd(n: integer): boolean;"
      "begin if n = 0 then isodd := false else isodd := iseven(n - 1);"
      "end;"
      "begin"
      "  if isodd(9) then a := 1 else a := 0;"
      "  if iseven(8) then b := 1 else b := 0;"
      "end.");
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_EQ(findGlobal(R, "a")->asInt(), 1);
  EXPECT_EQ(findGlobal(R, "b")->asInt(), 1);
}

} // namespace

namespace {

TEST(InterpreterTest, RunawayRecursionHitsDepthLimit) {
  auto Prog = compile("program p; var r: integer;"
                      "function loop(n: integer): integer;"
                      "begin loop := loop(n + 1); end;"
                      "begin r := loop(0); end.");
  InterpOptions Opts;
  Opts.MaxCallDepth = 100;
  Interpreter I(*Prog, Opts);
  auto R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("call depth"), std::string::npos);
}

TEST(InterpreterTest, DeepButBoundedRecursionSucceeds) {
  auto R = runProgram("program p; var r: integer;"
                      "function down(n: integer): integer;"
                      "begin if n = 0 then down := 0"
                      " else down := down(n - 1) + 1; end;"
                      "begin r := down(800); end.");
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_EQ(findGlobal(R, "r")->asInt(), 800);
}

} // namespace

namespace {

TEST(InterpreterTest, StrictModeFlagsUseBeforeAssignment) {
  auto Prog = compile("program p; var x, y: integer;"
                      "begin y := x + 1; x := 2; end.");
  InterpOptions Opts;
  Opts.DetectUninitialized = true;
  Interpreter I(*Prog, Opts);
  auto R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("'x' is used before"), std::string::npos);
}

TEST(InterpreterTest, StrictModeFlagsMissingFunctionResult) {
  auto Prog = compile("program p; var r: integer;"
                      "function f(x: integer): integer;"
                      "begin if x > 100 then f := x; end;"
                      "begin r := f(1); end.");
  InterpOptions Opts;
  Opts.DetectUninitialized = true;
  Interpreter I(*Prog, Opts);
  auto R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("without assigning its result"),
            std::string::npos);
}

TEST(InterpreterTest, StrictModeAcceptsProperPrograms) {
  auto Prog = compile(workload::Figure4Buggy);
  InterpOptions Opts;
  Opts.DetectUninitialized = true;
  Interpreter I(*Prog, Opts);
  auto R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error.Message;
}

TEST(InterpreterTest, LaxModeToleratesUninitializedReads) {
  auto R = runProgram("program p; var x, y: integer;"
                      "begin y := x + 1; end.");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(findGlobal(R, "y")->asInt(), 1) << "defaults to zero";
}

} // namespace
