//===- ObsTest.cpp - Observability layer tests ----------------------------===//
//
// The contract of src/obs and its wiring into the pipeline:
//  - the JSON writer and parser round-trip (the trace exporter, metric
//    snapshots and bench --json all ride on them);
//  - spans nest, order and annotate correctly in the exported JSONL;
//  - disabled tracing emits nothing and allocates nothing on the hot path;
//  - the metrics registry counts exactly, and its totals equal the sums of
//    the per-session/per-context stats structs (no drift);
//  - a traced BatchRunner run covers every pipeline phase and every line
//    of its export is independently parseable.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "runtime/BatchRunner.h"
#include "support/JSON.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <sstream>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::runtime;
using namespace gadt::workload;

//===----------------------------------------------------------------------===//
// Allocation accounting for the disabled-hot-path test. Sanitizers replace
// operator new themselves, so the check only runs in plain builds.
//===----------------------------------------------------------------------===//

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GADT_OBS_NO_ALLOC_CHECK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) ||     \
    __has_feature(memory_sanitizer)
#define GADT_OBS_NO_ALLOC_CHECK 1
#endif
#endif

#ifndef GADT_OBS_NO_ALLOC_CHECK
// The replacement operator new allocates with malloc, so the frees below
// are matched; GCC's pairing heuristic cannot see that.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

static std::atomic<uint64_t> GAllocCount{0};

void *operator new(std::size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
#endif

namespace {

//===----------------------------------------------------------------------===//
// JSON writer / parser round-trip
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterParserRoundTrip) {
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject();
  W.key("s").value("a \"quoted\"\nline\twith\\slashes");
  W.key("i").value(int64_t(-42));
  W.key("u").value(uint64_t(18446744073709551615ull));
  W.key("d").value(1.5);
  W.key("b").value(true);
  W.key("n").null();
  W.key("arr").beginArray().value(1).value(2).value(3).endArray();
  W.key("obj").beginObject().key("k").value("v").endObject();
  W.endObject();

  std::optional<json::Value> V = json::parse(Buf);
  ASSERT_TRUE(V.has_value()) << Buf;
  EXPECT_EQ(V->getString("s"), "a \"quoted\"\nline\twith\\slashes");
  EXPECT_EQ(V->getNumber("i"), -42.0);
  EXPECT_EQ(V->getNumber("d"), 1.5);
  EXPECT_TRUE(V->getBool("b"));
  ASSERT_NE(V->find("n"), nullptr);
  EXPECT_TRUE(V->find("n")->isNull());
  ASSERT_NE(V->find("arr"), nullptr);
  ASSERT_EQ(V->find("arr")->Arr.size(), 3u);
  EXPECT_EQ(V->find("arr")->Arr[1].Num, 2.0);
  ASSERT_NE(V->find("obj"), nullptr);
  EXPECT_EQ(V->find("obj")->getString("k"), "v");
}

TEST(JsonTest, ControlCharactersEscapeAndParseBack) {
  std::string Raw = "ctrl:\x01\x1f done";
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject().key("k").value(Raw).endObject();
  std::optional<json::Value> V = json::parse(Buf);
  ASSERT_TRUE(V.has_value()) << Buf;
  EXPECT_EQ(V->getString("k"), Raw);
}

TEST(JsonTest, ParserRejectsMalformed) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1,2,]").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("nul").has_value());
}

//===----------------------------------------------------------------------===//
// Metrics registry semantics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CountersAndGaugesAreExact) {
  obs::Registry Reg;
  obs::Counter &C = Reg.counter("test.counter");
  for (int I = 0; I < 100; ++I)
    C.add();
  C.add(17);
  EXPECT_EQ(Reg.counterValue("test.counter"), 117u);
  EXPECT_EQ(Reg.counterValue("never.touched"), 0u);
  // Same name returns the same instrument.
  EXPECT_EQ(&C, &Reg.counter("test.counter"));

  obs::Gauge &G = Reg.gauge("test.gauge");
  G.set(5);
  G.add(-2);
  EXPECT_EQ(Reg.gaugeValue("test.gauge"), 3);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::Histogram H;
  EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::bucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::bucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::bucketBound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketBound(3), 7u);

  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 1000ull})
    H.observe(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucket(0), 1u); // 0
  EXPECT_EQ(H.bucket(1), 1u); // 1
  EXPECT_EQ(H.bucket(2), 2u); // 2, 3
  EXPECT_EQ(H.bucket(10), 1u); // 1000
}

TEST(MetricsTest, JsonSnapshotParses) {
  obs::Registry Reg;
  Reg.counter("a.b").add(7);
  Reg.gauge("g").set(-4);
  Reg.histogram("h.micros").observe(3);
  std::optional<json::Value> V = json::parse(Reg.jsonSnapshot());
  ASSERT_TRUE(V.has_value()) << Reg.jsonSnapshot();
  const json::Value *Counters = V->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->getNumber("a.b"), 7.0);
  const json::Value *Gauges = V->find("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_EQ(Gauges->getNumber("g"), -4.0);
  const json::Value *Hists = V->find("histograms");
  ASSERT_NE(Hists, nullptr);
  const json::Value *H = Hists->find("h.micros");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->getNumber("count"), 1.0);
  EXPECT_EQ(H->getNumber("sum"), 3.0);
}

//===----------------------------------------------------------------------===//
// Span tracing
//===----------------------------------------------------------------------===//

/// Splits JSONL into parsed objects, failing the test on any bad line.
std::vector<json::Value> parseLines(const std::string &Jsonl) {
  std::vector<json::Value> Out;
  std::istringstream In(Jsonl);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<json::Value> V = json::parse(Line);
    EXPECT_TRUE(V.has_value()) << "unparseable JSONL line: " << Line;
    if (V)
      Out.push_back(std::move(*V));
  }
  return Out;
}

const json::Value *findEvent(const std::vector<json::Value> &Events,
                             const std::string &Name) {
  for (const json::Value &E : Events)
    if (E.getString("name") == Name)
      return &E;
  return nullptr;
}

TEST(TracerTest, SpansNestAndExportOrdered) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl(); // drain anything a previous test buffered
  T.enable();
  {
    obs::Span Outer("outer", "test");
    Outer.arg("label", "hello world");
    Outer.arg("n", uint64_t(42));
    Outer.arg("ok", true);
    {
      obs::Span Inner("inner", "test");
      EXPECT_TRUE(Inner.active());
    }
  }
  obs::instant("mark", "test");
  T.disable();

  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  ASSERT_EQ(Events.size(), 3u);

  const json::Value *Outer = findEvent(Events, "outer");
  const json::Value *Inner = findEvent(Events, "inner");
  const json::Value *Mark = findEvent(Events, "mark");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Mark, nullptr);

  EXPECT_EQ(Outer->getString("ph"), "X");
  EXPECT_EQ(Outer->getString("cat"), "test");
  EXPECT_EQ(Mark->getString("ph"), "i");

  // The inner span lies within the outer span's interval.
  double OutT0 = Outer->getNumber("ts");
  double OutT1 = OutT0 + Outer->getNumber("dur");
  double InT0 = Inner->getNumber("ts");
  double InT1 = InT0 + Inner->getNumber("dur");
  EXPECT_GE(InT0, OutT0);
  EXPECT_LE(InT1, OutT1);

  // Export is sorted by timestamp.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_GE(Events[I].getNumber("ts"), Events[I - 1].getNumber("ts"));

  // Typed args survive the round trip.
  const json::Value *Args = Outer->find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->getString("label"), "hello world");
  EXPECT_EQ(Args->getNumber("n"), 42.0);
  EXPECT_TRUE(Args->getBool("ok"));

  // Drained: a second export is empty.
  EXPECT_EQ(T.exportJsonl(), "");
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(TracerTest, DisabledEmitsNothing) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  ASSERT_FALSE(T.isEnabled());
  {
    obs::Span S("ghost", "test");
    EXPECT_FALSE(S.active());
    S.arg("k", uint64_t(1));
  }
  obs::instant("ghost.mark", "test");
  EXPECT_EQ(T.eventCount(), 0u);
  EXPECT_EQ(T.exportJsonl(), "");
}

TEST(TracerTest, DisabledHotPathDoesNotAllocate) {
#ifdef GADT_OBS_NO_ALLOC_CHECK
  GTEST_SKIP() << "allocation accounting is unavailable under sanitizers";
#else
  ASSERT_FALSE(obs::enabled());
  uint64_t Before = GAllocCount.load();
  for (int I = 0; I < 1000; ++I) {
    obs::Span S("hot", "test");
    S.arg("i", uint64_t(I));
  }
  uint64_t After = GAllocCount.load();
  EXPECT_EQ(After, Before) << "disabled spans must not allocate";
#endif
}

TEST(TracerTest, FlushWritesJsonlFile) {
  std::string Path = ::testing::TempDir() + "gadt_obs_flush_test.jsonl";
  obs::Tracer T; // private instance; spans go to the global one, so record
                 // events directly
  T.enableToFile(Path);
  T.completeEvent("phase", "test", 1000, 2000, {{"k", "v", true}});
  T.instant("tick", "test");
  T.flush();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  std::vector<json::Value> Events = parseLines(Content);
  ASSERT_EQ(Events.size(), 2u);
  const json::Value *Phase = findEvent(Events, "phase");
  ASSERT_NE(Phase, nullptr);
  EXPECT_EQ(Phase->getNumber("ts"), 1.0); // 1000 ns == 1 microsecond
  EXPECT_EQ(Phase->getNumber("dur"), 2.0);
  EXPECT_NE(findEvent(Events, "tick"), nullptr);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Registry totals == summed per-session structs (no stats drift)
//===----------------------------------------------------------------------===//

std::vector<SessionRequest> smallWorkload(unsigned N) {
  std::vector<ProgramPair> Pairs;
  Pairs.push_back(chainProgram(6, 2));
  Pairs.push_back(treeProgram(3));
  Pairs.push_back({Figure4Fixed, Figure4Buggy, "decrement"});
  std::vector<SessionRequest> Reqs;
  for (unsigned I = 0; I < N; ++I) {
    const ProgramPair &P = Pairs[I % Pairs.size()];
    SessionRequest R;
    R.Source = P.Buggy;
    R.Intended = P.Fixed;
    Reqs.push_back(std::move(R));
  }
  return Reqs;
}

TEST(ObservabilityTest, RegistryTotalsMatchSummedStructs) {
  obs::Registry Reg;
  RuntimeContext Ctx(&Reg);
  std::vector<SessionRequest> Reqs = smallWorkload(9);

  // Two passes: the second is fully warm, so both hit and miss counters
  // accumulate interesting values.
  uint64_t Sessions = 0, Judgements = 0, Unanswered = 0, MemoHits = 0;
  uint64_t Activations = 0, Pruned = 0;
  std::map<std::string, uint64_t> BySource;
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (const SessionRequest &R : Reqs) {
      SessionResult Res = runSession(Ctx, R);
      ASSERT_TRUE(Res.Prepared) << Res.Message;
      ++Sessions;
      Judgements += Res.Stats.Judgements;
      Unanswered += Res.Stats.Unanswered;
      MemoHits += Res.Stats.MemoHits;
      Activations += Res.Stats.SlicingActivations;
      Pruned += Res.Stats.NodesPruned;
      for (const auto &[Source, N] : Res.Stats.AnswersBySource)
        BySource[Source] += N;
    }
  }

  // Cache counters: registry == the context's own RuntimeStats snapshot.
  RuntimeStats S = Ctx.stats();
  EXPECT_EQ(Reg.counterValue("runtime.cache.program.hits"), S.ProgramHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.program.misses"),
            S.ProgramMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.transform.hits"),
            S.TransformHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.transform.misses"),
            S.TransformMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.sdg.hits"), S.SdgHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.sdg.misses"), S.SdgMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.slice.hits"), S.SliceHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.slice.misses"), S.SliceMisses);
  EXPECT_EQ(static_cast<uint64_t>(Reg.gaugeValue("runtime.subjects")),
            S.Subjects);

  // Session accounting: registry == the sum of every SessionStats.
  EXPECT_EQ(Reg.counterValue("runtime.sessions"), Sessions);
  EXPECT_EQ(Reg.histogram("runtime.session.micros").count(), Sessions);
  EXPECT_EQ(Reg.counterValue("debug.sessions"), Sessions);
  EXPECT_EQ(Reg.counterValue("debug.queries.total"), Judgements);
  EXPECT_EQ(Reg.counterValue("debug.queries.unanswered"), Unanswered);
  EXPECT_EQ(Reg.counterValue("debug.memo.hits"), MemoHits);
  EXPECT_EQ(Reg.counterValue("debug.slicing.activations"), Activations);
  EXPECT_EQ(Reg.counterValue("debug.slicing.nodes_pruned"), Pruned);
  for (const auto &[Source, N] : BySource)
    EXPECT_EQ(Reg.counterValue("debug.queries." + Source), N)
        << "source " << Source;

  // A warm second pass must have produced hits on every cache.
  EXPECT_GT(S.ProgramHits, 0u);
  EXPECT_GT(S.TransformHits, 0u);
  EXPECT_GT(S.SdgHits, 0u);
  EXPECT_GT(S.SliceHits, 0u);
}

TEST(ObservabilityTest, PrivateRegistryKeepsGlobalClean) {
  uint64_t GlobalBefore =
      obs::Registry::global().counterValue("runtime.sessions");
  obs::Registry Reg;
  RuntimeContext Ctx(&Reg);
  SessionRequest R;
  R.Source = Figure4Buggy;
  R.Intended = Figure4Fixed;
  SessionResult Res = runSession(Ctx, R);
  ASSERT_TRUE(Res.Prepared) << Res.Message;
  EXPECT_EQ(Reg.counterValue("runtime.sessions"), 1u);
  EXPECT_EQ(obs::Registry::global().counterValue("runtime.sessions"),
            GlobalBefore);
}

//===----------------------------------------------------------------------===//
// End-to-end: a traced batch run covers the whole pipeline
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, BatchRunnerTraceCoversPipeline) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  T.enable();

  obs::Registry Reg;
  auto Ctx = std::make_shared<RuntimeContext>(&Reg);
  BatchRunner Runner(Ctx, {4});
  std::vector<SessionRequest> Reqs = smallWorkload(6);
  std::vector<SessionResult> Rs = Runner.run(Reqs);
  T.disable();

  ASSERT_EQ(Rs.size(), Reqs.size());
  for (const SessionResult &R : Rs)
    EXPECT_TRUE(R.Prepared) << R.Message;

  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  ASSERT_FALSE(Events.empty());

  std::set<std::string> Names;
  for (const json::Value &E : Events)
    Names.insert(E.getString("name"));
  for (const char *Expected :
       {"session", "queue.wait", "parse", "sema", "transform", "sdg",
        "exectree", "debug", "judgement", "cache.program",
        "cache.transform", "cache.sdg", "cache.slice"})
    EXPECT_TRUE(Names.count(Expected)) << "missing phase: " << Expected;

  // One session span per request, each annotated with its outcome.
  unsigned SessionSpans = 0;
  for (const json::Value &E : Events) {
    if (E.getString("name") != "session")
      continue;
    ++SessionSpans;
    const json::Value *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_TRUE(Args->getBool("prepared"));
    EXPECT_NE(Args->getString("fp"), "");
  }
  EXPECT_EQ(SessionSpans, Reqs.size());

  // Judgement events carry the dialogue verdicts.
  for (const json::Value &E : Events) {
    if (E.getString("name") != "judgement")
      continue;
    const json::Value *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    std::string Verdict = Args->getString("verdict");
    EXPECT_TRUE(Verdict == "correct" || Verdict == "incorrect" ||
                Verdict == "dont_know")
        << Verdict;
    EXPECT_NE(Args->getString("unit"), "");
    EXPECT_NE(Args->getString("source"), "");
  }

  // The private registry saw the batch too.
  EXPECT_EQ(Reg.counterValue("runtime.sessions"), Reqs.size());
  EXPECT_EQ(Reg.histogram("runtime.queue_wait.micros").count(), Reqs.size());
}

} // namespace
