//===- ObsTest.cpp - Observability layer tests ----------------------------===//
//
// The contract of src/obs and its wiring into the pipeline:
//  - the JSON writer and parser round-trip (the trace exporter, metric
//    snapshots and bench --json all ride on them);
//  - spans nest, order and annotate correctly in the exported JSONL;
//  - disabled tracing emits nothing and allocates nothing on the hot path;
//  - the metrics registry counts exactly, and its totals equal the sums of
//    the per-session/per-context stats structs (no drift);
//  - a traced BatchRunner run covers every pipeline phase and every line
//    of its export is independently parseable;
//  - events carry the span hierarchy (sid/psid) and batch sessions carry
//    flow ids from the enqueuing thread to the worker that ran them;
//  - per-thread trace buffers are bounded and overflow is counted, not
//    grown; histogram quantiles are exact where exactness is possible;
//  - the profiler, structured log and metrics exporter stay correct (and
//    TSan-clean) when raced from many threads.
//
//===----------------------------------------------------------------------===//

#include "obs/Exporter.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Trace.h"

#include "runtime/BatchRunner.h"
#include "support/JSON.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <thread>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::runtime;
using namespace gadt::workload;

//===----------------------------------------------------------------------===//
// Allocation accounting for the disabled-hot-path test. Sanitizers replace
// operator new themselves, so the check only runs in plain builds.
//===----------------------------------------------------------------------===//

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GADT_OBS_NO_ALLOC_CHECK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) ||     \
    __has_feature(memory_sanitizer)
#define GADT_OBS_NO_ALLOC_CHECK 1
#endif
#endif

#ifndef GADT_OBS_NO_ALLOC_CHECK
// The replacement operator new allocates with malloc, so the frees below
// are matched; GCC's pairing heuristic cannot see that.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

static std::atomic<uint64_t> GAllocCount{0};

void *operator new(std::size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
#endif

namespace {

//===----------------------------------------------------------------------===//
// JSON writer / parser round-trip
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterParserRoundTrip) {
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject();
  W.key("s").value("a \"quoted\"\nline\twith\\slashes");
  W.key("i").value(int64_t(-42));
  W.key("u").value(uint64_t(18446744073709551615ull));
  W.key("d").value(1.5);
  W.key("b").value(true);
  W.key("n").null();
  W.key("arr").beginArray().value(1).value(2).value(3).endArray();
  W.key("obj").beginObject().key("k").value("v").endObject();
  W.endObject();

  std::optional<json::Value> V = json::parse(Buf);
  ASSERT_TRUE(V.has_value()) << Buf;
  EXPECT_EQ(V->getString("s"), "a \"quoted\"\nline\twith\\slashes");
  EXPECT_EQ(V->getNumber("i"), -42.0);
  EXPECT_EQ(V->getNumber("d"), 1.5);
  EXPECT_TRUE(V->getBool("b"));
  ASSERT_NE(V->find("n"), nullptr);
  EXPECT_TRUE(V->find("n")->isNull());
  ASSERT_NE(V->find("arr"), nullptr);
  ASSERT_EQ(V->find("arr")->Arr.size(), 3u);
  EXPECT_EQ(V->find("arr")->Arr[1].Num, 2.0);
  ASSERT_NE(V->find("obj"), nullptr);
  EXPECT_EQ(V->find("obj")->getString("k"), "v");
}

TEST(JsonTest, ControlCharactersEscapeAndParseBack) {
  std::string Raw = "ctrl:\x01\x1f done";
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject().key("k").value(Raw).endObject();
  std::optional<json::Value> V = json::parse(Buf);
  ASSERT_TRUE(V.has_value()) << Buf;
  EXPECT_EQ(V->getString("k"), Raw);
}

TEST(JsonTest, ParserRejectsMalformed) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1,2,]").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("nul").has_value());
}

//===----------------------------------------------------------------------===//
// Metrics registry semantics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CountersAndGaugesAreExact) {
  obs::Registry Reg;
  obs::Counter &C = Reg.counter("test.counter");
  for (int I = 0; I < 100; ++I)
    C.add();
  C.add(17);
  EXPECT_EQ(Reg.counterValue("test.counter"), 117u);
  EXPECT_EQ(Reg.counterValue("never.touched"), 0u);
  // Same name returns the same instrument.
  EXPECT_EQ(&C, &Reg.counter("test.counter"));

  obs::Gauge &G = Reg.gauge("test.gauge");
  G.set(5);
  G.add(-2);
  EXPECT_EQ(Reg.gaugeValue("test.gauge"), 3);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::Histogram H;
  EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::bucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::bucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::bucketBound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketBound(3), 7u);

  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 1000ull})
    H.observe(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucket(0), 1u); // 0
  EXPECT_EQ(H.bucket(1), 1u); // 1
  EXPECT_EQ(H.bucket(2), 2u); // 2, 3
  EXPECT_EQ(H.bucket(10), 1u); // 1000
}

TEST(MetricsTest, JsonSnapshotParses) {
  obs::Registry Reg;
  Reg.counter("a.b").add(7);
  Reg.gauge("g").set(-4);
  Reg.histogram("h.micros").observe(3);
  std::optional<json::Value> V = json::parse(Reg.jsonSnapshot());
  ASSERT_TRUE(V.has_value()) << Reg.jsonSnapshot();
  const json::Value *Counters = V->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->getNumber("a.b"), 7.0);
  const json::Value *Gauges = V->find("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_EQ(Gauges->getNumber("g"), -4.0);
  const json::Value *Hists = V->find("histograms");
  ASSERT_NE(Hists, nullptr);
  const json::Value *H = Hists->find("h.micros");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->getNumber("count"), 1.0);
  EXPECT_EQ(H->getNumber("sum"), 3.0);
}

TEST(MetricsTest, ApproxQuantileExactCases) {
  obs::Histogram Empty;
  EXPECT_EQ(Empty.approxQuantile(0.5), 0.0);

  // A single repeated value is exact at every quantile: the [min,max]
  // clamp collapses the bucket's interpolation range to a point.
  obs::Histogram Point;
  for (int I = 0; I < 100; ++I)
    Point.observe(10);
  for (double Q : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_EQ(Point.approxQuantile(Q), 10.0) << "q=" << Q;

  // Out-of-range Q clamps instead of misbehaving.
  EXPECT_EQ(Point.approxQuantile(-3.0), 10.0);
  EXPECT_EQ(Point.approxQuantile(7.0), 10.0);

  // Ranks that land in a single-width bucket (0 or 1) are exact even with
  // a mixed population: 0, 1, 1000 → the median is exactly 1.
  obs::Histogram Mixed;
  for (uint64_t V : {0ull, 1ull, 1000ull})
    Mixed.observe(V);
  EXPECT_EQ(Mixed.approxQuantile(0.5), 1.0);
  EXPECT_EQ(Mixed.approxQuantile(0.0), 0.0);
  EXPECT_EQ(Mixed.approxQuantile(1.0), 1000.0);
}

TEST(MetricsTest, ApproxQuantileInterpolatesWithinBucket) {
  // Two values in bucket 4 (range [8,15]): rank 1 of 2 interpolates to the
  // bucket midpoint 8 + (1/2)*(15-8) = 11.5; rank 2 reaches the top, which
  // the max-clamp pins to the observed 15.
  obs::Histogram H;
  H.observe(8);
  H.observe(15);
  EXPECT_DOUBLE_EQ(H.approxQuantile(0.5), 11.5);
  EXPECT_DOUBLE_EQ(H.approxQuantile(1.0), 15.0);
  // The min-clamp keeps low quantiles at or above the observed minimum.
  EXPECT_GE(H.approxQuantile(0.01), 8.0);
}

TEST(MetricsTest, SnapshotsCarryQuantiles) {
  obs::Registry Reg;
  obs::Histogram &H = Reg.histogram("q.micros");
  for (int I = 0; I < 50; ++I)
    H.observe(64);
  std::optional<json::Value> V = json::parse(Reg.jsonSnapshot());
  ASSERT_TRUE(V.has_value()) << Reg.jsonSnapshot();
  const json::Value *HJ = V->find("histograms")->find("q.micros");
  ASSERT_NE(HJ, nullptr);
  EXPECT_EQ(HJ->getNumber("p50"), 64.0);
  EXPECT_EQ(HJ->getNumber("p95"), 64.0);
  EXPECT_EQ(HJ->getNumber("p99"), 64.0);

  obs::Registry::SnapshotData S = Reg.snapshotData();
  ASSERT_EQ(S.Histograms.size(), 1u);
  EXPECT_EQ(S.Histograms[0].first, "q.micros");
  EXPECT_EQ(S.Histograms[0].second.Count, 50u);
  EXPECT_EQ(S.Histograms[0].second.P50, 64.0);
  EXPECT_EQ(S.Histograms[0].second.P99, 64.0);
}

//===----------------------------------------------------------------------===//
// Span tracing
//===----------------------------------------------------------------------===//

/// Splits JSONL into parsed objects, failing the test on any bad line.
std::vector<json::Value> parseLines(const std::string &Jsonl) {
  std::vector<json::Value> Out;
  std::istringstream In(Jsonl);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<json::Value> V = json::parse(Line);
    EXPECT_TRUE(V.has_value()) << "unparseable JSONL line: " << Line;
    if (V)
      Out.push_back(std::move(*V));
  }
  return Out;
}

const json::Value *findEvent(const std::vector<json::Value> &Events,
                             const std::string &Name) {
  for (const json::Value &E : Events)
    if (E.getString("name") == Name)
      return &E;
  return nullptr;
}

TEST(TracerTest, SpansNestAndExportOrdered) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl(); // drain anything a previous test buffered
  T.enable();
  {
    obs::Span Outer("outer", "test");
    Outer.arg("label", "hello world");
    Outer.arg("n", uint64_t(42));
    Outer.arg("ok", true);
    {
      obs::Span Inner("inner", "test");
      EXPECT_TRUE(Inner.active());
    }
  }
  obs::instant("mark", "test");
  T.disable();

  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  ASSERT_EQ(Events.size(), 3u);

  const json::Value *Outer = findEvent(Events, "outer");
  const json::Value *Inner = findEvent(Events, "inner");
  const json::Value *Mark = findEvent(Events, "mark");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Mark, nullptr);

  EXPECT_EQ(Outer->getString("ph"), "X");
  EXPECT_EQ(Outer->getString("cat"), "test");
  EXPECT_EQ(Mark->getString("ph"), "i");

  // The inner span lies within the outer span's interval.
  double OutT0 = Outer->getNumber("ts");
  double OutT1 = OutT0 + Outer->getNumber("dur");
  double InT0 = Inner->getNumber("ts");
  double InT1 = InT0 + Inner->getNumber("dur");
  EXPECT_GE(InT0, OutT0);
  EXPECT_LE(InT1, OutT1);

  // Export is sorted by timestamp.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_GE(Events[I].getNumber("ts"), Events[I - 1].getNumber("ts"));

  // Typed args survive the round trip.
  const json::Value *Args = Outer->find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->getString("label"), "hello world");
  EXPECT_EQ(Args->getNumber("n"), 42.0);
  EXPECT_TRUE(Args->getBool("ok"));

  // Drained: a second export is empty.
  EXPECT_EQ(T.exportJsonl(), "");
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(TracerTest, DisabledEmitsNothing) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  ASSERT_FALSE(T.isEnabled());
  {
    obs::Span S("ghost", "test");
    EXPECT_FALSE(S.active());
    S.arg("k", uint64_t(1));
  }
  obs::instant("ghost.mark", "test");
  EXPECT_EQ(T.eventCount(), 0u);
  EXPECT_EQ(T.exportJsonl(), "");
}

TEST(TracerTest, DisabledHotPathDoesNotAllocate) {
#ifdef GADT_OBS_NO_ALLOC_CHECK
  GTEST_SKIP() << "allocation accounting is unavailable under sanitizers";
#else
  ASSERT_FALSE(obs::enabled());
  uint64_t Before = GAllocCount.load();
  for (int I = 0; I < 1000; ++I) {
    obs::Span S("hot", "test");
    S.arg("i", uint64_t(I));
  }
  uint64_t After = GAllocCount.load();
  EXPECT_EQ(After, Before) << "disabled spans must not allocate";
#endif
}

TEST(TracerTest, FlushWritesJsonlFile) {
  std::string Path = ::testing::TempDir() + "gadt_obs_flush_test.jsonl";
  obs::Tracer T; // private instance; spans go to the global one, so record
                 // events directly
  T.enableToFile(Path);
  T.completeEvent("phase", "test", 1000, 2000, {{"k", "v", true}});
  T.instant("tick", "test");
  T.flush();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  std::vector<json::Value> Events = parseLines(Content);
  ASSERT_EQ(Events.size(), 2u);
  const json::Value *Phase = findEvent(Events, "phase");
  ASSERT_NE(Phase, nullptr);
  EXPECT_EQ(Phase->getNumber("ts"), 1.0); // 1000 ns == 1 microsecond
  EXPECT_EQ(Phase->getNumber("dur"), 2.0);
  EXPECT_NE(findEvent(Events, "tick"), nullptr);
  std::remove(Path.c_str());
}

TEST(TracerTest, BoundedBuffersCountDroppedEvents) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  size_t DefaultCap = T.maxEventsPerThread();
  uint64_t DroppedBefore =
      obs::Registry::global().counterValue("obs.trace.dropped");

  T.setMaxEventsPerThread(4);
  T.enable();
  for (int I = 0; I < 10; ++I)
    obs::instant("overflow", "test");
  T.disable();
  T.setMaxEventsPerThread(DefaultCap);

  EXPECT_EQ(T.eventCount(), 4u);
  EXPECT_EQ(obs::Registry::global().counterValue("obs.trace.dropped"),
            DroppedBefore + 6);

  // The surviving events are intact and the buffer drains normally.
  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  EXPECT_EQ(Events.size(), 4u);
  for (const json::Value &E : Events)
    EXPECT_EQ(E.getString("name"), "overflow");
}

TEST(TracerTest, SidPsidLinkTheSpanHierarchy) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  T.enable();
  {
    obs::Span Outer("h.outer", "test");
    {
      obs::Span Inner("h.inner", "test");
      obs::instant("h.mark", "test");
    }
  }
  T.disable();

  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  ASSERT_EQ(Events.size(), 3u);
  const json::Value *Outer = findEvent(Events, "h.outer");
  const json::Value *Inner = findEvent(Events, "h.inner");
  const json::Value *Mark = findEvent(Events, "h.mark");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Mark, nullptr);

  // Every complete event names itself; roots have no psid field at all.
  double OuterSid = Outer->getNumber("sid");
  double InnerSid = Inner->getNumber("sid");
  EXPECT_GT(OuterSid, 0.0);
  EXPECT_GT(InnerSid, 0.0);
  EXPECT_NE(OuterSid, InnerSid);
  EXPECT_EQ(Outer->find("psid"), nullptr);

  // The child points at its parent, and the instant at its enclosing span.
  EXPECT_EQ(Inner->getNumber("psid"), OuterSid);
  EXPECT_EQ(Mark->getNumber("psid"), InnerSid);
}

//===----------------------------------------------------------------------===//
// Registry totals == summed per-session structs (no stats drift)
//===----------------------------------------------------------------------===//

std::vector<SessionRequest> smallWorkload(unsigned N) {
  std::vector<ProgramPair> Pairs;
  Pairs.push_back(chainProgram(6, 2));
  Pairs.push_back(treeProgram(3));
  Pairs.push_back({Figure4Fixed, Figure4Buggy, "decrement"});
  std::vector<SessionRequest> Reqs;
  for (unsigned I = 0; I < N; ++I) {
    const ProgramPair &P = Pairs[I % Pairs.size()];
    SessionRequest R;
    R.Source = P.Buggy;
    R.Intended = P.Fixed;
    Reqs.push_back(std::move(R));
  }
  return Reqs;
}

TEST(ObservabilityTest, RegistryTotalsMatchSummedStructs) {
  obs::Registry Reg;
  RuntimeContext Ctx(&Reg);
  std::vector<SessionRequest> Reqs = smallWorkload(9);

  // Two passes: the second is fully warm, so both hit and miss counters
  // accumulate interesting values.
  uint64_t Sessions = 0, Judgements = 0, Unanswered = 0, MemoHits = 0;
  uint64_t Activations = 0, Pruned = 0;
  std::map<std::string, uint64_t> BySource;
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (const SessionRequest &R : Reqs) {
      SessionResult Res = runSession(Ctx, R);
      ASSERT_TRUE(Res.Prepared) << Res.Message;
      ++Sessions;
      Judgements += Res.Stats.Judgements;
      Unanswered += Res.Stats.Unanswered;
      MemoHits += Res.Stats.MemoHits;
      Activations += Res.Stats.SlicingActivations;
      Pruned += Res.Stats.NodesPruned;
      for (const auto &[Source, N] : Res.Stats.AnswersBySource)
        BySource[Source] += N;
    }
  }

  // Cache counters: registry == the context's own RuntimeStats snapshot.
  RuntimeStats S = Ctx.stats();
  EXPECT_EQ(Reg.counterValue("runtime.cache.program.hits"), S.ProgramHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.program.misses"),
            S.ProgramMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.transform.hits"),
            S.TransformHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.transform.misses"),
            S.TransformMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.sdg.hits"), S.SdgHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.sdg.misses"), S.SdgMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.code.hits"), S.CodeHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.code.misses"), S.CodeMisses);
  EXPECT_EQ(Reg.counterValue("runtime.cache.slice.hits"), S.SliceHits);
  EXPECT_EQ(Reg.counterValue("runtime.cache.slice.misses"), S.SliceMisses);
  EXPECT_EQ(static_cast<uint64_t>(Reg.gaugeValue("runtime.subjects")),
            S.Subjects);

  // Session accounting: registry == the sum of every SessionStats.
  EXPECT_EQ(Reg.counterValue("runtime.sessions"), Sessions);
  EXPECT_EQ(Reg.histogram("runtime.session.micros").count(), Sessions);
  EXPECT_EQ(Reg.counterValue("debug.sessions"), Sessions);
  EXPECT_EQ(Reg.counterValue("debug.queries.total"), Judgements);
  EXPECT_EQ(Reg.counterValue("debug.queries.unanswered"), Unanswered);
  EXPECT_EQ(Reg.counterValue("debug.memo.hits"), MemoHits);
  EXPECT_EQ(Reg.counterValue("debug.slicing.activations"), Activations);
  EXPECT_EQ(Reg.counterValue("debug.slicing.nodes_pruned"), Pruned);
  for (const auto &[Source, N] : BySource)
    EXPECT_EQ(Reg.counterValue("debug.queries." + Source), N)
        << "source " << Source;

  // A warm second pass must have produced hits on every cache.
  EXPECT_GT(S.ProgramHits, 0u);
  EXPECT_GT(S.TransformHits, 0u);
  EXPECT_GT(S.SdgHits, 0u);
  EXPECT_GT(S.CodeHits, 0u);
  EXPECT_GT(S.SliceHits, 0u);
}

TEST(ObservabilityTest, PrivateRegistryKeepsGlobalClean) {
  uint64_t GlobalBefore =
      obs::Registry::global().counterValue("runtime.sessions");
  obs::Registry Reg;
  RuntimeContext Ctx(&Reg);
  SessionRequest R;
  R.Source = Figure4Buggy;
  R.Intended = Figure4Fixed;
  SessionResult Res = runSession(Ctx, R);
  ASSERT_TRUE(Res.Prepared) << Res.Message;
  EXPECT_EQ(Reg.counterValue("runtime.sessions"), 1u);
  EXPECT_EQ(obs::Registry::global().counterValue("runtime.sessions"),
            GlobalBefore);
}

//===----------------------------------------------------------------------===//
// End-to-end: a traced batch run covers the whole pipeline
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, BatchRunnerTraceCoversPipeline) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  T.enable();

  obs::Registry Reg;
  auto Ctx = std::make_shared<RuntimeContext>(&Reg);
  BatchRunner Runner(Ctx, {4});
  std::vector<SessionRequest> Reqs = smallWorkload(6);
  std::vector<SessionResult> Rs = Runner.run(Reqs);
  T.disable();

  ASSERT_EQ(Rs.size(), Reqs.size());
  for (const SessionResult &R : Rs)
    EXPECT_TRUE(R.Prepared) << R.Message;

  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  ASSERT_FALSE(Events.empty());

  std::set<std::string> Names;
  for (const json::Value &E : Events)
    Names.insert(E.getString("name"));
  for (const char *Expected :
       {"session", "queue.wait", "parse", "sema", "transform", "sdg",
        "exectree", "debug", "judgement", "cache.program",
        "cache.transform", "cache.sdg", "cache.slice"})
    EXPECT_TRUE(Names.count(Expected)) << "missing phase: " << Expected;

  // One session span per request, each annotated with its outcome.
  unsigned SessionSpans = 0;
  for (const json::Value &E : Events) {
    if (E.getString("name") != "session")
      continue;
    ++SessionSpans;
    const json::Value *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_TRUE(Args->getBool("prepared"));
    EXPECT_NE(Args->getString("fp"), "");
  }
  EXPECT_EQ(SessionSpans, Reqs.size());

  // Judgement events carry the dialogue verdicts.
  for (const json::Value &E : Events) {
    if (E.getString("name") != "judgement")
      continue;
    const json::Value *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    std::string Verdict = Args->getString("verdict");
    EXPECT_TRUE(Verdict == "correct" || Verdict == "incorrect" ||
                Verdict == "dont_know")
        << Verdict;
    EXPECT_NE(Args->getString("unit"), "");
    EXPECT_NE(Args->getString("source"), "");
  }

  // The private registry saw the batch too.
  EXPECT_EQ(Reg.counterValue("runtime.sessions"), Reqs.size());
  EXPECT_EQ(Reg.histogram("runtime.queue_wait.micros").count(), Reqs.size());
}

TEST(ObservabilityTest, FlowsLinkEnqueueToWorkerAcrossThreads) {
  obs::Tracer &T = obs::Tracer::global();
  T.exportJsonl();
  T.enable();

  obs::Registry Reg;
  auto Ctx = std::make_shared<RuntimeContext>(&Reg);
  BatchRunner Runner(Ctx, {3});
  std::vector<SessionRequest> Reqs = smallWorkload(5);
  std::vector<SessionResult> Rs = Runner.run(Reqs);
  T.disable();
  ASSERT_EQ(Rs.size(), Reqs.size());

  // Collect flow events ('s' start at enqueue, 't' step at pickup, 'f'
  // finish inside the session) keyed by flow id.
  struct Flow {
    double StartTid = -1, StepTid = -1, FinishTid = -1;
  };
  std::map<double, Flow> Flows;
  std::vector<json::Value> Events = parseLines(T.exportJsonl());
  for (const json::Value &E : Events) {
    if (E.getString("name") != "session.flow")
      continue;
    Flow &F = Flows[E.getNumber("id")];
    std::string Ph = E.getString("ph");
    if (Ph == "s")
      F.StartTid = E.getNumber("tid");
    else if (Ph == "t")
      F.StepTid = E.getNumber("tid");
    else if (Ph == "f") {
      F.FinishTid = E.getNumber("tid");
      // Finish events bind to the enclosing session slice.
      EXPECT_EQ(E.getString("bp"), "e");
    }
  }

  // One complete flow per request, each crossing from the enqueuing
  // thread to a worker (the enqueuing thread never runs sessions).
  ASSERT_EQ(Flows.size(), Reqs.size());
  for (const auto &[Id, F] : Flows) {
    EXPECT_GT(Id, 0.0);
    EXPECT_GE(F.StartTid, 0.0) << "flow " << Id << " missing 's'";
    EXPECT_GE(F.StepTid, 0.0) << "flow " << Id << " missing 't'";
    EXPECT_GE(F.FinishTid, 0.0) << "flow " << Id << " missing 'f'";
    EXPECT_NE(F.StartTid, F.FinishTid) << "flow " << Id << " never crossed";
    EXPECT_EQ(F.StepTid, F.FinishTid) << "pickup and run on one worker";
  }

  // Session spans carry their flow id as an arg, matching a seen flow.
  for (const json::Value &E : Events) {
    if (E.getString("name") != "session")
      continue;
    const json::Value *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_TRUE(Flows.count(Args->getNumber("flow")));
  }
}

TEST(ObservabilityTest, CacheGaugesTrackOccupancy) {
  obs::Registry Reg;
  RuntimeContext Ctx(&Reg);
  for (const SessionRequest &R : smallWorkload(6)) {
    SessionResult Res = runSession(Ctx, R);
    ASSERT_TRUE(Res.Prepared) << Res.Message;
  }

  // Caches never evict, so entry gauges equal the miss counters (every
  // miss inserts exactly one entry), and each entry banked some bytes.
  RuntimeStats S = Ctx.stats();
  struct {
    const char *Name;
    uint64_t Misses;
  } Caches[] = {{"program", S.ProgramMisses},
                {"transform", S.TransformMisses},
                {"sdg", S.SdgMisses},
                {"code", S.CodeMisses},
                {"slice", S.SliceMisses}};
  for (const auto &C : Caches) {
    std::string Base = std::string("runtime.cache.") + C.Name;
    EXPECT_EQ(static_cast<uint64_t>(Reg.gaugeValue(Base + ".entries")),
              C.Misses)
        << Base;
    EXPECT_GT(Reg.gaugeValue(Base + ".bytes"), 0) << Base;
  }
}

//===----------------------------------------------------------------------===//
// Concurrency: profiler, log and exporter raced from many threads. These
// run under TSan in CI; the assertions here are deliberately structural
// (counts and formats), the sanitizer checks the memory model.
//===----------------------------------------------------------------------===//

TEST(ObsConcurrencyTest, ProfilerStartStopRacesSpanTraffic) {
  obs::Profiler P;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Workers;
  for (int W = 0; W < 4; ++W)
    Workers.emplace_back([&Stop] {
      while (!Stop.load(std::memory_order_relaxed)) {
        obs::Span Outer("conc.outer", "test");
        obs::Span Inner("conc.inner", "test");
      }
    });

  // Cycle the sampler against live span traffic.
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    P.start(2000);
    EXPECT_TRUE(P.isRunning());
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    P.stop();
    EXPECT_FALSE(P.isRunning());
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &W : Workers)
    W.join();

  // Every attributed sample appears in the collapsed profile, every line
  // of which is "span;path count".
  uint64_t InProfile = 0;
  std::istringstream In(P.collapsed());
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_EQ(Line.find("conc.outer"), 0u) << Line;
    InProfile += std::strtoull(Line.c_str() + Space + 1, nullptr, 10);
  }
  EXPECT_EQ(InProfile, P.sampleCount());

  // The JSON form parses and agrees on the totals.
  std::optional<json::Value> V = json::parse(P.jsonProfile());
  ASSERT_TRUE(V.has_value()) << P.jsonProfile();
  EXPECT_EQ(V->getNumber("samples"),
            static_cast<double>(P.sampleCount()));

  // clear() refuses while running, works when stopped.
  P.clear();
  EXPECT_EQ(P.sampleCount(), 0u);
  EXPECT_EQ(P.collapsed(), "");
}

TEST(ObsConcurrencyTest, LogManyThreads) {
  obs::Log L;
  L.enable(obs::LogLevel::Debug);
  constexpr int NumThreads = 8, PerThread = 250;
  std::vector<std::thread> Writers;
  for (int W = 0; W < NumThreads; ++W)
    Writers.emplace_back([&L, W] {
      for (int I = 0; I < PerThread; ++I)
        L.write(obs::LogLevel::Info, "conc", "message",
                {{"writer", std::to_string(W), /*Quote=*/false},
                 {"i", std::to_string(I), /*Quote=*/false}});
    });
  for (std::thread &W : Writers)
    W.join();
  L.disable();

  EXPECT_EQ(L.recordCount(),
            static_cast<uint64_t>(NumThreads * PerThread));
  std::vector<json::Value> Records = parseLines(L.drain());
  ASSERT_EQ(Records.size(), static_cast<size_t>(NumThreads * PerThread));

  // Each record is complete: every (writer, i) pair arrived exactly once.
  std::set<std::pair<int, int>> Seen;
  for (const json::Value &R : Records) {
    EXPECT_EQ(R.getString("level"), "info");
    EXPECT_EQ(R.getString("component"), "conc");
    EXPECT_EQ(R.getString("msg"), "message");
    const json::Value *F = R.find("fields");
    ASSERT_NE(F, nullptr);
    Seen.insert({static_cast<int>(F->getNumber("writer")),
                 static_cast<int>(F->getNumber("i"))});
  }
  EXPECT_EQ(Seen.size(), static_cast<size_t>(NumThreads * PerThread));
}

TEST(ObsConcurrencyTest, ExporterFlushRacesIncrements) {
  obs::Counter &C = obs::Registry::global().counter("conc.exporter.races");
  uint64_t Before = C.value();

  obs::Exporter E; // no path: flushNow() renders in memory only
  std::atomic<bool> Stop{false};
  std::thread Flusher([&E, &Stop] {
    while (!Stop.load(std::memory_order_relaxed))
      E.flushNow();
  });
  constexpr int NumThreads = 4, PerThread = 20000;
  std::vector<std::thread> Bumpers;
  for (int W = 0; W < NumThreads; ++W)
    Bumpers.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.add();
    });
  for (std::thread &W : Bumpers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Flusher.join();

  // No increment was lost and flushes really happened.
  EXPECT_EQ(C.value(), Before + NumThreads * PerThread);
  EXPECT_GT(E.flushCount(), 0u);

  // The final exposition carries the settled value.
  std::string Prom = obs::Exporter::prometheusText();
  std::string Want = "gadt_conc_exporter_races " +
                     std::to_string(Before + NumThreads * PerThread) + "\n";
  EXPECT_NE(Prom.find(Want), std::string::npos) << Prom;
  EXPECT_NE(Prom.find("# TYPE gadt_conc_exporter_races counter"),
            std::string::npos);
}

TEST(ObsConcurrencyTest, ExporterPeriodicSeriesAndProm) {
  std::string Path = ::testing::TempDir() + "gadt_obs_exporter_test.jsonl";
  obs::Registry::global().counter("conc.exporter.series").add(3);
  obs::Exporter E;
  E.start(Path, 10);
  EXPECT_TRUE(E.isRunning());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  E.stop(); // final flush + .prom exposition
  EXPECT_FALSE(E.isRunning());

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  std::vector<json::Value> Ticks = parseLines(Content);
  ASSERT_FALSE(Ticks.empty());
  for (const json::Value &Tick : Ticks) {
    EXPECT_NE(Tick.find("ts"), nullptr);
    const json::Value *Counters = Tick.find("counters");
    ASSERT_NE(Counters, nullptr);
    const json::Value *C = Counters->find("conc.exporter.series");
    ASSERT_NE(C, nullptr);
    EXPECT_GE(C->getNumber("total"), 3.0);
  }
  // First tick's delta equals its total (the series starts from zero).
  const json::Value *First =
      Ticks.front().find("counters")->find("conc.exporter.series");
  EXPECT_EQ(First->getNumber("delta"), First->getNumber("total"));

  std::ifstream PromIn(Path + ".prom");
  ASSERT_TRUE(PromIn.good());
  std::string Prom((std::istreambuf_iterator<char>(PromIn)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Prom.find("gadt_conc_exporter_series"), std::string::npos);
  std::remove(Path.c_str());
  std::remove((Path + ".prom").c_str());
}

} // namespace
