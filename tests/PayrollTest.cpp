//===- PayrollTest.cpp - Whole-system integration on a realistic app ------===//
//
// Drives every phase of GADT on the payroll workload: transformation of a
// program whose routines read array globals, spec-driven test databases
// for two routines, and full debugging sessions for two different planted
// bugs — the "large-scale program development" scenario the paper's
// long-range goal describes.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "interp/Interpreter.h"
#include "pascal/Frontend.h"
#include "tgen/Classifier.h"
#include "tgen/FrameGen.h"
#include "tgen/Generator.h"
#include "tgen/SpecParser.h"
#include "transform/Transform.h"
#include "workload/Payroll.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::interp;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

/// Judges a test case by re-running it in the intended program.
tgen::OutcomeChecker referenceChecker(const Program &Reference,
                                      std::string Routine) {
  return [&Reference, Routine](const std::vector<Value> &Args,
                               const CallOutcome &Out) {
    Interpreter I(Reference);
    CallOutcome Expected = I.callRoutine(Routine, Args);
    if (!Expected.Ok || !Out.Ok)
      return Expected.Ok == Out.Ok;
    for (const Binding &B : Expected.Outputs)
      for (const Binding &Got : Out.Outputs)
        if (Got.Name == B.Name && !Got.V.equals(B.V))
          return false;
    return true;
  };
}

/// Builds (spec, report DB) for one routine, tested against the intended
/// program with spec-driven instantiation.
std::pair<std::shared_ptr<tgen::TestSpec>, std::shared_ptr<tgen::TestReportDB>>
buildDatabase(const char *SpecText, const Program &Reference) {
  DiagnosticsEngine Diags;
  std::shared_ptr<tgen::TestSpec> Spec = tgen::parseSpec(SpecText, Diags);
  EXPECT_TRUE(Spec != nullptr) << Diags.str();
  tgen::FrameSet Frames = tgen::generateFrames(*Spec);
  auto DB = std::make_shared<tgen::TestReportDB>(tgen::runTestSuite(
      Reference, *Spec, Frames, tgen::specInstantiator(*Spec),
      referenceChecker(Reference, Spec->TestName)));
  return {Spec, DB};
}

TEST(PayrollTest, ProgramsRunAndBugsManifest) {
  auto Correct = compile(workload::PayrollCorrect);
  auto TaxBug = compile(workload::PayrollTaxBug);
  auto OtBug = compile(workload::PayrollOvertimeBug);
  Interpreter I1(*Correct), I2(*TaxBug), I3(*OtBug);
  ExecResult R1 = I1.run(), R2 = I2.run(), R3 = I3.run();
  ASSERT_TRUE(R1.Ok) << R1.Error.Message;
  ASSERT_TRUE(R2.Ok && R3.Ok);
  EXPECT_NE(R1.Output, R2.Output) << "tax bug must be observable";
  EXPECT_NE(R1.Output, R3.Output) << "overtime bug must be observable";
}

TEST(PayrollTest, StrictModeCleanOnIntendedProgram) {
  auto Correct = compile(workload::PayrollCorrect);
  InterpOptions Opts;
  Opts.DetectUninitialized = true;
  Interpreter I(*Correct, Opts);
  EXPECT_TRUE(I.run().Ok);
}

TEST(PayrollTest, TransformConvertsArrayGlobals) {
  auto Correct = compile(workload::PayrollCorrect);
  DiagnosticsEngine Diags;
  transform::TransformResult X =
      transform::transformProgram(*Correct, Diags);
  ASSERT_TRUE(X.Transformed) << Diags.str();
  // processall and findhighest read the hours/rates arrays through global
  // side effects; after transformation they take them as parameters.
  RoutineDecl *ProcessAll =
      X.Transformed->getMain()->findNested("processall");
  ASSERT_TRUE(ProcessAll);
  EXPECT_EQ(ProcessAll->getParams().size(), 5u)
      << "n, totnet, tottax + in hours + in rates";
  analysis::CallGraph CG(*X.Transformed);
  analysis::SideEffectAnalysis SEA(*X.Transformed, CG);
  EXPECT_TRUE(SEA.programIsSideEffectFree());

  // Behaviour is preserved.
  Interpreter IO(*Correct), IX(*X.Transformed);
  EXPECT_EQ(IO.run().Output, IX.run().Output);
}

TEST(PayrollTest, SpecDrivenSuitesPassOnIntendedProgram) {
  auto Correct = compile(workload::PayrollCorrect);
  auto [TaxSpec, TaxDB] = buildDatabase(workload::TaxforSpec, *Correct);
  EXPECT_GT(TaxDB->passCount(), 0u);
  EXPECT_EQ(TaxDB->failCount(), 0u);
  auto [OtSpec, OtDB] = buildDatabase(workload::OvertimeSpec, *Correct);
  EXPECT_GT(OtDB->passCount(), 0u);
  EXPECT_EQ(OtDB->failCount(), 0u);
}

TEST(PayrollTest, SpecInstantiationRoundTrips) {
  for (const char *SpecText :
       {workload::TaxforSpec, workload::OvertimeSpec}) {
    DiagnosticsEngine Diags;
    auto Spec = tgen::parseSpec(SpecText, Diags);
    ASSERT_TRUE(Spec != nullptr) << Diags.str();
    tgen::FrameSet Frames = tgen::generateFrames(*Spec);
    ASSERT_GT(Frames.Frames.size(), 2u);
    for (const tgen::TestFrame &F : Frames.Frames) {
      auto Args = tgen::instantiateFrame(*Spec, F);
      ASSERT_TRUE(Args.has_value()) << F.encode();
      std::vector<Binding> Inputs;
      for (size_t I = 0; I != Spec->Params.size(); ++I)
        if (!Spec->Params[I].IsOut)
          Inputs.push_back({Spec->Params[I].Name, (*Args)[I]});
      auto Back = tgen::classifyInputs(*Spec, Inputs);
      ASSERT_TRUE(Back.has_value()) << F.encode();
      EXPECT_EQ(Back->encode(), F.encode());
    }
  }
}

TEST(PayrollTest, TaxBugLocalizedWithTestDatabases) {
  auto Correct = compile(workload::PayrollCorrect);
  auto Buggy = compile(workload::PayrollTaxBug);
  DiagnosticsEngine Diags;
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid()) << Diags.str();
  // The overtime routine is covered by passing tests; taxfor's database is
  // built from the intended program too, but the buggy call's frames fail,
  // so the lookup stays silent and the search descends into taxfor.
  auto [OtSpec, OtDB] = buildDatabase(workload::OvertimeSpec, *Correct);
  Session.addTestDatabase(OtSpec, OtDB);
  IntendedProgramOracle User(*Correct);
  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "taxfor");
  EXPECT_EQ(Session.stats().Unanswered, 0u);
  // The candidate statements point into the bracket logic.
  EXPECT_FALSE(R.CandidateStmts.empty());
}

TEST(PayrollTest, OvertimeBugLocalized) {
  auto Correct = compile(workload::PayrollCorrect);
  auto Buggy = compile(workload::PayrollOvertimeBug);
  DiagnosticsEngine Diags;
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid());
  IntendedProgramOracle User(*Correct);
  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, "overtimepay");
}

TEST(PayrollTest, TestDatabaseCutsInteractions) {
  auto Correct = compile(workload::PayrollCorrect);
  auto Buggy = compile(workload::PayrollTaxBug);
  unsigned Queries[2];
  for (int WithDB = 0; WithDB <= 1; ++WithDB) {
    DiagnosticsEngine Diags;
    GADTSession Session(*Buggy, GADTOptions(), Diags);
    ASSERT_TRUE(Session.valid());
    if (WithDB) {
      auto [OtSpec, OtDB] = buildDatabase(workload::OvertimeSpec, *Correct);
      Session.addTestDatabase(OtSpec, OtDB);
    }
    IntendedProgramOracle User(*Correct);
    BugReport R = Session.debug(User);
    ASSERT_TRUE(R.Found && R.UnitName == "taxfor");
    Queries[WithDB] = Session.stats().userQueries();
  }
  EXPECT_LE(Queries[1], Queries[0])
      << "covered overtimepay calls answered from the database";
}

} // namespace
