//===- DifferentialTest.cpp - Seeded differential sweeps ------------------===//
//
// Two differential obligations for the batch runtime:
//
//  1. Transformation is semantics-preserving: for a seeded sweep of random
//     programs (gotos on and off), the original and the transformed program
//     produce identical output AND identical final global values.
//
//  2. Caching is observation-preserving: a session served from a warm
//     RuntimeContext localizes the same buggy unit, with a byte-identical
//     summary, as a cold one.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "pascal/Frontend.h"
#include "runtime/BatchRunner.h"
#include "transform/Transform.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::runtime;
using namespace gadt::workload;

namespace {

std::unique_ptr<Program> compile(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

SyntheticOptions optionsForSeed(uint32_t Seed) {
  SyntheticOptions Opts;
  Opts.Seed = Seed * 17 + 5;
  Opts.NumRoutines = 4 + Seed % 4;
  Opts.NumGlobals = 2 + Seed % 3;
  Opts.StmtsPerRoutine = 4 + Seed % 3;
  Opts.UseGotos = (Seed % 2) == 0; // alternate transform stress on/off
  return Opts;
}

/// Runs \p P and asserts success.
ExecResult mustRun(const Program &P) {
  Interpreter I(P);
  ExecResult R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error.Message;
  return R;
}

/// Every global of the original program must hold the same final value in
/// the transformed run. (The transformation may introduce fresh bookkeeping
/// variables — exit flags for structured goto elimination — so the check is
/// over the original's names, not set equality.)
void expectSameObservableState(const ExecResult &Orig,
                               const ExecResult &Xformed,
                               const std::string &Tag) {
  EXPECT_EQ(Orig.Output, Xformed.Output) << Tag;
  for (const Binding &B : Orig.FinalGlobals) {
    bool Seen = false;
    for (const Binding &X : Xformed.FinalGlobals) {
      if (X.Name != B.Name)
        continue;
      Seen = true;
      EXPECT_TRUE(B.V.equals(X.V))
          << Tag << ": global '" << B.Name << "' diverged: original "
          << B.V.str() << " vs transformed " << X.V.str();
      break;
    }
    EXPECT_TRUE(Seen) << Tag << ": global '" << B.Name
                      << "' lost by the transformation";
  }
}

class DifferentialSweep : public ::testing::TestWithParam<uint32_t> {};

//===----------------------------------------------------------------------===//
// Original vs transformed
//===----------------------------------------------------------------------===//

TEST_P(DifferentialSweep, TransformPreservesFinalGlobals) {
  ProgramPair Pair = randomProgram(optionsForSeed(GetParam()));
  for (const std::string *Src : {&Pair.Fixed, &Pair.Buggy}) {
    const char *Tag = (Src == &Pair.Fixed) ? "fixed" : "buggy";
    auto Prog = compile(*Src);
    ASSERT_TRUE(Prog);

    DiagnosticsEngine Diags;
    transform::TransformResult T = transform::transformProgram(*Prog, Diags);
    ASSERT_TRUE(T.Transformed) << Diags.str();

    ExecResult Orig = mustRun(*Prog);
    ExecResult Xformed = mustRun(*T.Transformed);
    expectSameObservableState(Orig, Xformed, Tag);
  }
}

//===----------------------------------------------------------------------===//
// Cold vs warm cache
//===----------------------------------------------------------------------===//

TEST_P(DifferentialSweep, ColdAndWarmCacheLocalizeTheSameUnit) {
  ProgramPair Pair = randomProgram(optionsForSeed(GetParam()));

  // Mirror PropertyTest: the planted bug only matters on seeds where it
  // actually changes the observable output.
  auto Buggy = compile(Pair.Buggy);
  auto Fixed = compile(Pair.Fixed);
  ASSERT_TRUE(Buggy && Fixed);
  if (mustRun(*Buggy).Output == mustRun(*Fixed).Output)
    GTEST_SKIP() << "bug does not manifest for this seed";

  SessionRequest Req;
  Req.Source = Pair.Buggy;
  Req.Intended = Pair.Fixed;

  RuntimeContext Ctx;
  SessionResult Cold = runSession(Ctx, Req);
  ASSERT_TRUE(Cold.Found) << Cold.Message;
  EXPECT_EQ(Cold.UnitName, Pair.BuggyRoutine);

  // Same context: everything is served from the caches.
  uint64_t MissesBefore = Ctx.stats().TransformMisses +
                          Ctx.stats().SdgMisses + Ctx.stats().SliceMisses;
  SessionResult Warm = runSession(Ctx, Req);
  uint64_t MissesAfter = Ctx.stats().TransformMisses +
                         Ctx.stats().SdgMisses + Ctx.stats().SliceMisses;
  EXPECT_EQ(Warm.summary(), Cold.summary());
  EXPECT_EQ(MissesAfter, MissesBefore) << "warm session rebuilt an artifact";

  // A different context (cold again) must agree too — the caches hold no
  // session-observable state.
  RuntimeContext Ctx2;
  EXPECT_EQ(runSession(Ctx2, Req).summary(), Cold.summary());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep, ::testing::Range(1u, 17u));

} // namespace
