//===- IncrementalTest.cpp - Edit-sequence differential tests -------------===//
//
// The correctness bar for the incremental recompute layer
// (runtime/EditSession.h): for scripted edit sequences, an incremental
// commit must produce byte-identical artifacts to a cold full rebuild of
// the same source — the SDG's str() and dot() renderings, every memoized
// static slice, and the execution transcript of the spliced bytecode.
// Alongside identity, the IncrementalStats counters pin *how much* work
// each edit did, so a regression that silently rebuilds everything (right
// answer, no reuse) fails here too.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "runtime/EditSession.h"
#include "slicing/DynamicSlicer.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

using namespace gadt;
using namespace gadt::runtime;

namespace {

std::vector<int64_t> sampleInput() {
  return {3, 7, 2, 9, 4, 1, 8, 5, 6, 10, 11, 13, 12, 15, 14, 17};
}

/// One full observable execution under the session's compiled code:
/// result, final globals, execution tree, and every dynamic slice. Strict
/// must match the session's Checked option or the interpreter ignores the
/// injected code.
std::string execTranscript(const pascal::Program &Prog,
                           std::shared_ptr<const bytecode::CompiledProgram> Code,
                           bool Strict) {
  interp::InterpOptions Opts;
  Opts.TraceLoops = true;
  Opts.TraceIterations = true;
  Opts.TrackDeps = true;
  Opts.DetectUninitialized = Strict;
  Opts.Code = std::move(Code);
  interp::Interpreter I(Prog, Opts);
  I.setInput(sampleInput());
  trace::ExecTreeBuilder Builder;
  I.setListener(&Builder);
  interp::ExecResult R = I.run();
  auto Tree = Builder.takeTree();

  std::ostringstream Out;
  Out << "ok: " << (R.Ok ? 1 : 0) << "\n";
  if (!R.Ok)
    Out << "error: " << R.Error.Loc.Line << ":" << R.Error.Loc.Column << " "
        << R.Error.Message << "\n";
  Out << "output: " << R.Output << "\n";
  Out << "steps: " << R.Steps << "\n";
  Out << "units: " << R.UnitsExecuted << "\n";
  for (const interp::Binding &B : R.FinalGlobals)
    Out << "global " << B.Name << " = " << B.V.str() << "\n";
  Out << "tree:\n" << (Tree && Tree->getRoot() ? Tree->str() : "<none>\n");
  if (Tree && Tree->getRoot()) {
    Out << "slices:\n";
    for (uint32_t Id = 1; Id <= R.UnitsExecuted; ++Id) {
      const trace::ExecNode *N = Tree->node(Id);
      if (!N)
        continue;
      for (const interp::Binding &B : N->getOutputs()) {
        auto Kept = slicing::dynamicSlice(N, B.Name);
        Out << "slice " << Id << "." << B.Name << ":";
        for (uint32_t K : Kept.ids())
          Out << " " << K;
        Out << "\n";
      }
    }
  }
  return Out.str();
}

IncrementalStats commitSource(EditSession &S, const std::string &Source) {
  EditTransaction T = S.begin(Source);
  EXPECT_TRUE(T.valid()) << T.errors();
  return T.commit();
}

/// A fresh session whose single (cold) commit is the reference state.
std::unique_ptr<EditSession>
coldSession(const std::string &Source,
            EditSessionOptions Opts = EditSessionOptions()) {
  auto S = std::make_unique<EditSession>(Opts);
  IncrementalStats St = commitSource(*S, Source);
  EXPECT_TRUE(St.Committed);
  EXPECT_TRUE(St.FullRebuild);
  return S;
}

/// Byte-identity of the committed artifacts of two sessions over the same
/// source: SDG text and dot renderings, and the execution transcript of the
/// session bytecode.
void expectSameCommitted(EditSession &Inc, EditSession &Cold,
                         bool Strict = false) {
  ASSERT_NE(Inc.sdg(), nullptr);
  ASSERT_NE(Cold.sdg(), nullptr);
  EXPECT_EQ(Inc.sdg()->str(), Cold.sdg()->str());
  EXPECT_EQ(Inc.sdg()->dot(), Cold.sdg()->dot());
  ASSERT_NE(Inc.program(), nullptr);
  ASSERT_NE(Cold.program(), nullptr);
  ASSERT_NE(Inc.code(), nullptr);
  ASSERT_NE(Cold.code(), nullptr);
  EXPECT_EQ(execTranscript(*Inc.program(), Inc.code(), Strict),
            execTranscript(*Cold.program(), Cold.code(), Strict));
}

std::vector<uint32_t> sliceIds(EditSession &S, const std::string &Routine,
                               const std::string &Var) {
  auto Slice = S.sliceOnOutput(Routine, Var);
  EXPECT_NE(Slice, nullptr) << Routine << "." << Var;
  return Slice ? Slice->nodes().ids() : std::vector<uint32_t>{};
}

constexpr unsigned kLeaves = 6;

std::string baseProgram() {
  return workload::incrementalEditProgram(kLeaves);
}
std::string editedProgram(unsigned Leaf, unsigned Variant) {
  return workload::incrementalEditProgram(kLeaves, Leaf, Variant);
}

//===----------------------------------------------------------------------===//
// Commit mechanics
//===----------------------------------------------------------------------===//

TEST(IncrementalTest, FirstCommitBuildsCold) {
  EditSession S;
  EXPECT_EQ(S.program(), nullptr);
  IncrementalStats St = commitSource(S, baseProgram());
  EXPECT_TRUE(St.Committed);
  EXPECT_TRUE(St.FullRebuild);
  // Main + kLeaves leaves + hub, fingerprinted main-first.
  EXPECT_EQ(St.RoutinesTotal, kLeaves + 2);
  EXPECT_EQ(St.RoutinesDirty, kLeaves + 2);
  EXPECT_EQ(St.PdgRebuilt, kLeaves + 2);
  EXPECT_EQ(St.CodeRecompiled, kLeaves + 2);
  EXPECT_EQ(St.PdgReplayed, 0u);
  EXPECT_EQ(St.CodeReplayed, 0u);
  ASSERT_NE(S.sdg(), nullptr);
  ASSERT_NE(S.code(), nullptr);
  EXPECT_TRUE(S.sdg()->hasReplayData());
}

TEST(IncrementalTest, SingleLeafEditRebuildsOnlyThatRoutine) {
  obs::Registry Reg;
  EditSessionOptions Opts;
  Opts.Metrics = &Reg;
  EditSession S(Opts);
  commitSource(S, baseProgram());

  const std::string Edited = editedProgram(3, 1);
  IncrementalStats St = commitSource(S, Edited);
  EXPECT_TRUE(St.Committed);
  EXPECT_FALSE(St.FullRebuild);
  EXPECT_EQ(St.RoutinesTotal, kLeaves + 2);
  EXPECT_EQ(St.RoutinesDirty, 1u);
  EXPECT_EQ(St.PdgRebuilt, 1u);
  EXPECT_EQ(St.PdgReplayed, kLeaves + 1);
  EXPECT_EQ(St.CodeRecompiled, 1u);
  EXPECT_EQ(St.CodeReplayed, kLeaves + 1);
  // The edited leaf's summary pairs must re-solve; so may its transitive
  // callers', but never the untouched sibling leaves'.
  EXPECT_GE(St.SummaryRecomputed, 1u);
  EXPECT_LE(St.SummaryRecomputed, 3u);

  // The runtime.incremental.* counters accumulate across both commits.
  EXPECT_EQ(Reg.counter("runtime.incremental.pdg_rebuilt").value(),
            kLeaves + 2 + 1);
  EXPECT_EQ(Reg.counter("runtime.incremental.code_recompiled").value(),
            kLeaves + 2 + 1);
  EXPECT_EQ(Reg.counter("runtime.incremental.routines_dirty").value(),
            kLeaves + 2 + 1);

  auto Cold = coldSession(Edited);
  expectSameCommitted(S, *Cold);
  EXPECT_EQ(sliceIds(S, "hub", "b"), sliceIds(*Cold, "hub", "b"));
  EXPECT_EQ(sliceIds(S, "leaf3", "y"), sliceIds(*Cold, "leaf3", "y"));
}

TEST(IncrementalTest, CheckedSessionReplaysStrictExecution) {
  EditSessionOptions Opts;
  Opts.Checked = true;
  EditSession S(Opts);
  commitSource(S, baseProgram());
  IncrementalStats St = commitSource(S, editedProgram(2, 4));
  EXPECT_FALSE(St.FullRebuild);
  EXPECT_EQ(St.CodeRecompiled, 1u);
  auto Cold = coldSession(editedProgram(2, 4), Opts);
  expectSameCommitted(S, *Cold, /*Strict=*/true);
}

TEST(IncrementalTest, EditEditRevertMatchesColdAtEveryStep) {
  EditSession S;
  commitSource(S, baseProgram());
  struct Step {
    unsigned Leaf, Variant;
  } Steps[] = {{4, 2}, {4, 7}, {1, 3}, {4, 0}};
  for (const Step &E : Steps) {
    const std::string Src = editedProgram(E.Leaf, E.Variant);
    IncrementalStats St = commitSource(S, Src);
    EXPECT_TRUE(St.Committed);
    EXPECT_FALSE(St.FullRebuild);
    auto Cold = coldSession(Src);
    expectSameCommitted(S, *Cold);
  }
  // The final revert restored the original text exactly.
  auto Cold = coldSession(baseProgram());
  expectSameCommitted(S, *Cold);
}

//===----------------------------------------------------------------------===//
// Invalidation rules
//===----------------------------------------------------------------------===//

// Four routines in fingerprint order: main, leafa, leafb, hub.
const char *kHandBase = R"(program p;
var r, g: integer;
procedure leafa(x: integer; var y: integer);
begin
  y := x + 1;
end;
procedure leafb(x: integer; var y: integer);
begin
  y := x * 2;
end;
procedure hub(a: integer; var b: integer);
var t, u: integer;
begin
  leafa(a, t);
  leafb(a, u);
  b := t + u;
end;
begin
  g := 5;
  hub(3, r);
  writeln(r + g);
end.
)";

TEST(IncrementalTest, HeaderChangeDirtiesCallers) {
  // Renaming leafa's parameter changes its header (and body), so hub — whose
  // own text is untouched — must rebuild both PDG and code; leafb and main
  // replay.
  std::string Edited = kHandBase;
  auto ReplaceAll = [&Edited](const std::string &From, const std::string &To) {
    for (size_t P = Edited.find(From); P != std::string::npos;
         P = Edited.find(From, P + To.size()))
      Edited.replace(P, From.size(), To);
  };
  ReplaceAll("leafa(x: integer", "leafa(x0: integer");
  ReplaceAll("y := x + 1", "y := x0 + 1");

  EditSession S;
  commitSource(S, kHandBase);
  IncrementalStats St = commitSource(S, Edited);
  EXPECT_FALSE(St.FullRebuild);
  EXPECT_EQ(St.PdgRebuilt, 2u);      // leafa + hub
  EXPECT_EQ(St.CodeRecompiled, 2u);  // leafa + hub
  EXPECT_EQ(St.PdgReplayed, 2u);     // main + leafb
  EXPECT_EQ(St.CodeReplayed, 2u);
  EXPECT_EQ(St.RoutinesDirty, 2u);
  auto Cold = coldSession(Edited);
  expectSameCommitted(S, *Cold);
  EXPECT_EQ(sliceIds(S, "hub", "b"), sliceIds(*Cold, "hub", "b"));
}

TEST(IncrementalTest, EffectSignatureChangeRedoesCallerPdgOnly) {
  // leafa starts reading the global g: its GREF set — and transitively
  // hub's — changes, so both callers re-derive their PDGs (global
  // formal/actual vertices), but only leafa itself recompiles; bytecode
  // never bakes callee effect sets.
  std::string Edited = kHandBase;
  size_t P = Edited.find("y := x + 1");
  ASSERT_NE(P, std::string::npos);
  Edited.replace(P, std::string("y := x + 1").size(), "y := x + g");

  EditSession S;
  commitSource(S, kHandBase);
  IncrementalStats St = commitSource(S, Edited);
  EXPECT_FALSE(St.FullRebuild);
  EXPECT_EQ(St.PdgRebuilt, 3u);     // leafa (body) + hub + main (effects)
  EXPECT_EQ(St.PdgReplayed, 1u);    // leafb
  EXPECT_EQ(St.CodeRecompiled, 1u); // leafa only
  EXPECT_EQ(St.CodeReplayed, 3u);
  auto Cold = coldSession(Edited);
  expectSameCommitted(S, *Cold);
}

TEST(IncrementalTest, InvalidEditLeavesSessionUntouched) {
  EditSession S;
  commitSource(S, baseProgram());
  const pascal::Program *Prog = S.program();
  const analysis::SDG *Graph = S.sdg();
  auto Code = S.code();
  const std::string GraphText = Graph->str();

  // Sema error: undeclared variable.
  EditTransaction Bad =
      S.begin("program p;\nbegin\n  x := 1;\nend.\n");
  EXPECT_FALSE(Bad.valid());
  EXPECT_FALSE(Bad.errors().empty());
  IncrementalStats St = Bad.commit();
  EXPECT_FALSE(St.Committed);

  // Syntax error.
  EditTransaction Worse = S.begin("program p; begin end");
  EXPECT_FALSE(Worse.valid());
  EXPECT_FALSE(Worse.commit().Committed);

  // The master state is bit-for-bit the one from the last good commit.
  EXPECT_EQ(S.program(), Prog);
  EXPECT_EQ(S.sdg(), Graph);
  EXPECT_EQ(S.code(), Code);
  EXPECT_EQ(S.sdg()->str(), GraphText);
}

TEST(IncrementalTest, RoutineListChangeFallsBackToFullRebuild) {
  EditSession S;
  commitSource(S, workload::incrementalEditProgram(3));
  const std::string Grown = workload::incrementalEditProgram(4);
  IncrementalStats St = commitSource(S, Grown);
  EXPECT_TRUE(St.Committed);
  EXPECT_TRUE(St.FullRebuild);
  EXPECT_EQ(St.RoutinesTotal, 6u); // main + 4 leaves + hub
  EXPECT_EQ(St.PdgRebuilt, 6u);
  auto Cold = coldSession(Grown);
  expectSameCommitted(S, *Cold);
}

TEST(IncrementalTest, SliceMemoEvictsIntersectingAndRemapsSurvivors) {
  EditSession S;
  commitSource(S, baseProgram());
  // Memoize three slices before the edit: one inside the edited leaf, one
  // through the hub (whose closure descends into every leaf), one in an
  // untouched sibling leaf.
  std::vector<uint32_t> Leaf5Before = sliceIds(S, "leaf5", "y");
  sliceIds(S, "leaf3", "y");
  sliceIds(S, "hub", "b");

  const std::string Edited = editedProgram(3, 9);
  IncrementalStats St = commitSource(S, Edited);
  EXPECT_FALSE(St.FullRebuild);
  // leaf3.y and hub.b intersect leaf3's dirtied range; leaf5.y avoids every
  // perturbed vertex and survives by id remapping.
  EXPECT_EQ(St.SlicesInvalidated, 2u);
  EXPECT_EQ(St.SlicesRemapped, 1u);

  auto Cold = coldSession(Edited);
  EXPECT_EQ(sliceIds(S, "leaf5", "y"), sliceIds(*Cold, "leaf5", "y"));
  EXPECT_EQ(sliceIds(S, "leaf3", "y"), sliceIds(*Cold, "leaf3", "y"));
  EXPECT_EQ(sliceIds(S, "hub", "b"), sliceIds(*Cold, "hub", "b"));
  // An unchanged-text edit of an unrelated sibling keeps the remapped slice
  // meaningful: same criterion, same answer as before the edit modulo ids.
  EXPECT_EQ(sliceIds(S, "leaf5", "y").size(), Leaf5Before.size());
}

//===----------------------------------------------------------------------===//
// Option axes
//===----------------------------------------------------------------------===//

TEST(IncrementalTest, ParallelCommitMatchesSerial) {
  EditSessionOptions Par;
  Par.Threads = 0; // hardware concurrency
  EditSession A(Par), B;
  for (const std::string &Src :
       {baseProgram(), editedProgram(1, 2), editedProgram(6, 5)}) {
    IncrementalStats SA = commitSource(A, Src);
    IncrementalStats SB = commitSource(B, Src);
    EXPECT_EQ(SA.FullRebuild, SB.FullRebuild);
    EXPECT_EQ(SA.PdgRebuilt, SB.PdgRebuilt);
    EXPECT_EQ(SA.PdgReplayed, SB.PdgReplayed);
    expectSameCommitted(A, B);
  }
}

TEST(IncrementalTest, TransformedSessionCommitsIncrementally) {
  EditSessionOptions Opts;
  Opts.Transform = true;
  EditSession S(Opts);
  commitSource(S, baseProgram());
  IncrementalStats St = commitSource(S, editedProgram(4, 3));
  EXPECT_TRUE(St.Committed);
  EXPECT_FALSE(St.FullRebuild);
  EXPECT_EQ(St.PdgRebuilt, 1u);
  auto Cold = coldSession(editedProgram(4, 3), Opts);
  expectSameCommitted(S, *Cold);
}

TEST(IncrementalTest, ForceFullRebuildDisablesReuse) {
  EditSessionOptions Opts;
  Opts.ForceFullRebuild = true;
  EditSession S(Opts);
  commitSource(S, baseProgram());
  IncrementalStats St = commitSource(S, editedProgram(3, 1));
  EXPECT_TRUE(St.FullRebuild);
  EXPECT_EQ(St.PdgReplayed, 0u);
  EXPECT_EQ(St.CodeReplayed, 0u);
  auto Cold = coldSession(editedProgram(3, 1));
  expectSameCommitted(S, *Cold);
}

} // namespace
