//===- PropertyTest.cpp - Randomized property tests -----------------------===//
//
// Parameterized sweeps over seeded random programs checking the system's
// core invariants:
//  - the transformation phase preserves semantics,
//  - transformed programs are side-effect free and goto-local,
//  - static slices preserve the criterion value,
//  - the debugger localizes the planted bug with a consistent oracle.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/SDG.h"
#include "analysis/SideEffects.h"
#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "interp/Interpreter.h"
#include "pascal/Frontend.h"
#include "slicing/ProgramProjection.h"
#include "slicing/StaticSlicer.h"
#include "transform/Transform.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::workload;

namespace {

std::unique_ptr<Program> compile(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str() << "\n" << Src;
  return Prog;
}

const Value *findGlobal(const ExecResult &R, const std::string &Name) {
  for (const Binding &B : R.FinalGlobals)
    if (B.Name == Name)
      return &B.V;
  return nullptr;
}

ExecResult runProgram(const Program &P) {
  Interpreter I(P);
  return I.run();
}

//===----------------------------------------------------------------------===//
// Transformation equivalence
//===----------------------------------------------------------------------===//

class TransformEquivalence : public testing::TestWithParam<uint32_t> {};

TEST_P(TransformEquivalence, RandomProgramUnchangedBehaviour) {
  SyntheticOptions Opts;
  Opts.Seed = GetParam();
  Opts.NumRoutines = 4 + GetParam() % 5;
  Opts.NumGlobals = 1 + GetParam() % 3;
  ProgramPair Pair = randomProgram(Opts);
  auto Prog = compile(Pair.Fixed);
  ASSERT_TRUE(Prog);

  DiagnosticsEngine Diags;
  transform::TransformResult X = transform::transformProgram(*Prog, Diags);
  ASSERT_TRUE(X.Transformed) << Diags.str() << "\n" << Pair.Fixed;

  ExecResult Orig = runProgram(*Prog);
  ExecResult After = runProgram(*X.Transformed);
  ASSERT_TRUE(Orig.Ok) << Orig.Error.Message;
  ASSERT_TRUE(After.Ok) << After.Error.Message;
  EXPECT_EQ(Orig.Output, After.Output) << Pair.Fixed;

  // The transformed program must be side-effect free at the unit level.
  analysis::CallGraph CG(*X.Transformed);
  analysis::SideEffectAnalysis SEA(*X.Transformed, CG);
  EXPECT_TRUE(SEA.programIsSideEffectFree());
}

TEST_P(TransformEquivalence, RandomGotoProgramUnchangedBehaviour) {
  SyntheticOptions Opts;
  Opts.Seed = GetParam() * 31 + 7;
  Opts.UseGotos = true;
  Opts.NumRoutines = 3 + GetParam() % 4;
  ProgramPair Pair = randomProgram(Opts);
  auto Prog = compile(Pair.Fixed);
  ASSERT_TRUE(Prog);

  DiagnosticsEngine Diags;
  transform::TransformResult X = transform::transformProgram(*Prog, Diags);
  ASSERT_TRUE(X.Transformed) << Diags.str() << "\n" << Pair.Fixed;

  ExecResult Orig = runProgram(*Prog);
  ExecResult After = runProgram(*X.Transformed);
  ASSERT_TRUE(Orig.Ok);
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(Orig.Output, After.Output) << Pair.Fixed;

  // And every goto must now be local.
  bool NonLocal = false;
  forEachRoutine(X.Transformed->getMain(), [&](RoutineDecl *R) {
    if (R->getBody())
      forEachStmt(R->getBody(), [&](Stmt *S) {
        if (auto *GS = dyn_cast<GotoStmt>(S))
          NonLocal |= GS->isNonLocal();
      });
  });
  EXPECT_FALSE(NonLocal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformEquivalence,
                         testing::Range(1u, 26u));

//===----------------------------------------------------------------------===//
// Slice soundness
//===----------------------------------------------------------------------===//

class SliceSoundness : public testing::TestWithParam<uint32_t> {};

TEST_P(SliceSoundness, ProjectionPreservesCriterionValue) {
  SyntheticOptions Opts;
  Opts.Seed = GetParam() * 1337 + 11;
  Opts.NumRoutines = 3 + GetParam() % 4;
  Opts.NumGlobals = 2;
  ProgramPair Pair = randomProgram(Opts);
  auto Prog = compile(Pair.Fixed);
  ASSERT_TRUE(Prog);

  analysis::SDG G(*Prog);
  slicing::StaticSlice Slice = slicing::sliceOnProgramVar(G, *Prog, "g1");
  ASSERT_GT(Slice.size(), 0u);
  DiagnosticsEngine Diags;
  auto Projected = slicing::projectSlice(*Prog, Slice, Diags);
  ASSERT_TRUE(Projected) << Diags.str() << "\n" << Pair.Fixed;

  ExecResult Orig = runProgram(*Prog);
  ExecResult Sliced = runProgram(*Projected);
  ASSERT_TRUE(Orig.Ok);
  ASSERT_TRUE(Sliced.Ok) << Sliced.Error.Message;
  const Value *VO = findGlobal(Orig, "g1");
  const Value *VS = findGlobal(Sliced, "g1");
  ASSERT_TRUE(VO && VS);
  EXPECT_TRUE(VO->equals(*VS))
      << "slice changed g1: " << VO->str() << " vs " << VS->str() << "\n"
      << Pair.Fixed;

  // Slices never grow.
  EXPECT_LE(Sliced.Steps, Orig.Steps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceSoundness, testing::Range(1u, 21u));

//===----------------------------------------------------------------------===//
// Debugger completeness
//===----------------------------------------------------------------------===//

class DebuggerCompleteness : public testing::TestWithParam<uint32_t> {};

TEST_P(DebuggerCompleteness, PlantedBugIsLocalized) {
  SyntheticOptions Opts;
  Opts.Seed = GetParam() * 7919 + 3;
  Opts.NumRoutines = 4 + GetParam() % 4;
  ProgramPair Pair = randomProgram(Opts);
  auto Buggy = compile(Pair.Buggy);
  auto Fixed = compile(Pair.Fixed);
  ASSERT_TRUE(Buggy && Fixed);

  // Only debug when the bug manifests in externally visible behaviour.
  ExecResult RB = runProgram(*Buggy);
  ExecResult RF = runProgram(*Fixed);
  ASSERT_TRUE(RB.Ok && RF.Ok);
  if (RB.Output == RF.Output)
    GTEST_SKIP() << "bug does not manifest for this seed";

  DiagnosticsEngine Diags;
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  ASSERT_TRUE(Session.valid()) << Diags.str();
  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.UnitName, Pair.BuggyRoutine)
      << Pair.Buggy << "\n"
      << Session.tree()->str();
  EXPECT_EQ(Session.stats().Unanswered, 0u);
}

TEST_P(DebuggerCompleteness, AllStrategiesAgreeOnTheBuggyUnit) {
  SyntheticOptions Opts;
  Opts.Seed = GetParam() * 104729 + 13;
  Opts.NumRoutines = 5;
  ProgramPair Pair = randomProgram(Opts);
  auto Buggy = compile(Pair.Buggy);
  auto Fixed = compile(Pair.Fixed);
  ExecResult RB = runProgram(*Buggy);
  ExecResult RF = runProgram(*Fixed);
  ASSERT_TRUE(RB.Ok && RF.Ok);
  if (RB.Output == RF.Output)
    GTEST_SKIP() << "bug does not manifest for this seed";

  for (SearchStrategy Strategy :
       {SearchStrategy::TopDown, SearchStrategy::TopDownHeaviest,
        SearchStrategy::DivideAndQuery, SearchStrategy::BottomUp}) {
    DiagnosticsEngine Diags;
    GADTOptions Opts2;
    Opts2.Debugger.Strategy = Strategy;
    GADTSession Session(*Buggy, Opts2, Diags);
    ASSERT_TRUE(Session.valid());
    IntendedProgramOracle User(*Fixed);
    BugReport R = Session.debug(User);
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.UnitName, Pair.BuggyRoutine)
        << "strategy " << static_cast<int>(Strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DebuggerCompleteness,
                         testing::Range(1u, 16u));

//===----------------------------------------------------------------------===//
// Generator sanity
//===----------------------------------------------------------------------===//

TEST(SyntheticTest, ChainProgramsBehaveAsDescribed) {
  ProgramPair Pair = chainProgram(5, 3);
  auto Fixed = compile(Pair.Fixed);
  auto Buggy = compile(Pair.Buggy);
  ExecResult RF = runProgram(*Fixed);
  ExecResult RB = runProgram(*Buggy);
  ASSERT_TRUE(RF.Ok && RB.Ok);
  EXPECT_NE(RF.Output, RB.Output);
  EXPECT_EQ(Pair.BuggyRoutine, "p3");
}

TEST(SyntheticTest, TreeProgramsBehaveAsDescribed) {
  ProgramPair Pair = treeProgram(3);
  auto Fixed = compile(Pair.Fixed);
  auto Buggy = compile(Pair.Buggy);
  ExecResult RF = runProgram(*Fixed);
  ExecResult RB = runProgram(*Buggy);
  ASSERT_TRUE(RF.Ok && RB.Ok);
  EXPECT_NE(RF.Output, RB.Output);
  EXPECT_EQ(Pair.BuggyRoutine, "n7");
}

TEST(SyntheticTest, WideProgramsManifestOnlyThroughTarget) {
  ProgramPair Pair = wideIrrelevantProgram(6);
  auto Fixed = compile(Pair.Fixed);
  auto Buggy = compile(Pair.Buggy);
  ExecResult RF = runProgram(*Fixed);
  ExecResult RB = runProgram(*Buggy);
  ASSERT_TRUE(RF.Ok && RB.Ok);
  EXPECT_NE(RF.Output, RB.Output);
}

TEST(SyntheticTest, GenerationIsDeterministic) {
  SyntheticOptions Opts;
  Opts.Seed = 42;
  EXPECT_EQ(randomProgram(Opts).Fixed, randomProgram(Opts).Fixed);
  Opts.Seed = 43;
  EXPECT_NE(randomProgram(SyntheticOptions{42}).Fixed,
            randomProgram(Opts).Fixed);
}

} // namespace
