//===- LexerTest.cpp - Lexer unit tests -----------------------------------===//

#include "pascal/Lexer.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::pascal;

namespace {

std::vector<Token> lex(std::string_view Src, DiagnosticsEngine &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kindsOf(std::string_view Src) {
  DiagnosticsEngine Diags;
  std::vector<TokenKind> Kinds;
  for (const Token &T : lex(Src, Diags))
    Kinds.push_back(T.Kind);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Kinds;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("", Diags);
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Keywords) {
  auto Kinds = kindsOf("program procedure function var begin end if then "
                       "else while do repeat until for to downto goto label "
                       "array of div mod and or not true false in out");
  std::vector<TokenKind> Expected = {
      TokenKind::KwProgram,  TokenKind::KwProcedure, TokenKind::KwFunction,
      TokenKind::KwVar,      TokenKind::KwBegin,     TokenKind::KwEnd,
      TokenKind::KwIf,       TokenKind::KwThen,      TokenKind::KwElse,
      TokenKind::KwWhile,    TokenKind::KwDo,        TokenKind::KwRepeat,
      TokenKind::KwUntil,    TokenKind::KwFor,       TokenKind::KwTo,
      TokenKind::KwDownto,   TokenKind::KwGoto,      TokenKind::KwLabel,
      TokenKind::KwArray,    TokenKind::KwOf,        TokenKind::KwDiv,
      TokenKind::KwMod,      TokenKind::KwAnd,       TokenKind::KwOr,
      TokenKind::KwNot,      TokenKind::KwTrue,      TokenKind::KwFalse,
      TokenKind::KwIn,       TokenKind::KwOut,       TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto Kinds = kindsOf("BEGIN End WhIlE");
  std::vector<TokenKind> Expected = {TokenKind::KwBegin, TokenKind::KwEnd,
                                     TokenKind::KwWhile, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, IdentifiersAreLowercased) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("ArrSum X9 under_score", Diags);
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "arrsum");
  EXPECT_EQ(Tokens[1].Text, "x9");
  EXPECT_EQ(Tokens[2].Text, "under_score");
}

TEST(LexerTest, IntegerLiterals) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("0 42 123456789", Diags);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456789);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto Kinds = kindsOf("( ) [ ] , ; : . .. := + - * = <> < <= > >=");
  std::vector<TokenKind> Expected = {
      TokenKind::LParen,    TokenKind::RParen,   TokenKind::LBracket,
      TokenKind::RBracket,  TokenKind::Comma,    TokenKind::Semicolon,
      TokenKind::Colon,     TokenKind::Dot,      TokenKind::DotDot,
      TokenKind::Assign,    TokenKind::Plus,     TokenKind::Minus,
      TokenKind::Star,      TokenKind::Equal,    TokenKind::NotEqual,
      TokenKind::Less,      TokenKind::LessEqual, TokenKind::Greater,
      TokenKind::GreaterEqual, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, AssignVersusColon) {
  auto Kinds = kindsOf("x := y : z");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Assign,
                                     TokenKind::Identifier, TokenKind::Colon,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, ParenStarComments) {
  auto Kinds = kindsOf("x (* a comment \n spanning lines *) y");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, BraceComments) {
  auto Kinds = kindsOf("x { comment } y");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, UnterminatedCommentIsAnError) {
  DiagnosticsEngine Diags;
  lex("x (* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("'hello' 'it''s'", Diags);
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "hello");
  EXPECT_EQ(Tokens[1].Text, "it's");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  DiagnosticsEngine Diags;
  lex("'oops", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StrayCharacterIsAnError) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("x # y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Unknown);
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  DiagnosticsEngine Diags;
  auto Tokens = lex("a\n  b", Diags);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(LexerTest, DotDotVersusDot) {
  auto Kinds = kindsOf("1..2 end.");
  std::vector<TokenKind> Expected = {TokenKind::IntLiteral, TokenKind::DotDot,
                                     TokenKind::IntLiteral, TokenKind::KwEnd,
                                     TokenKind::Dot, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

} // namespace
