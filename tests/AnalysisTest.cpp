//===- AnalysisTest.cpp - Call graph, side effects, CFG, dataflow ---------===//

#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "analysis/ControlDep.h"
#include "analysis/Dataflow.h"
#include "analysis/SideEffects.h"

#include "pascal/Frontend.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

bool hasGlobal(const std::vector<const VarDecl *> &Set,
               const std::string &Name) {
  for (const VarDecl *V : Set)
    if (V->getName() == Name)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, CollectsStatementAndExpressionCalls) {
  auto Prog = compile("program p; var r: integer;"
                      "function f(x: integer): integer; begin f := x; end;"
                      "procedure q(a: integer); begin r := f(a); end;"
                      "begin q(f(1) + f(2)); end.");
  CallGraph CG(*Prog);
  // main calls q once and f twice; q calls f once.
  EXPECT_EQ(CG.callSitesIn(Prog->getMain()).size(), 3u);
  const RoutineDecl *Q = Prog->getMain()->findNested("q");
  EXPECT_EQ(CG.callSitesIn(Q).size(), 1u);
  EXPECT_EQ(CG.allCallSites().size(), 4u);
}

TEST(CallGraphTest, BottomUpOrderPutsCalleesFirst) {
  auto Prog = compile(workload::Figure4Buggy);
  CallGraph CG(*Prog);
  auto Order = CG.bottomUpOrder();
  auto IndexOf = [&](const std::string &Name) {
    for (size_t I = 0; I != Order.size(); ++I)
      if (Order[I]->getName() == Name)
        return I;
    return Order.size();
  };
  EXPECT_LT(IndexOf("decrement"), IndexOf("sum2"));
  EXPECT_LT(IndexOf("sum2"), IndexOf("partialsums"));
  EXPECT_LT(IndexOf("sqrtest"), IndexOf("main"));
}

TEST(CallGraphTest, CallSiteArgsAccessor) {
  auto Prog = compile("program p; procedure q(a, b: integer); begin end;"
                      "begin q(1, 2); end.");
  CallGraph CG(*Prog);
  const auto &Sites = CG.callSitesIn(Prog->getMain());
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].args().size(), 2u);
  EXPECT_EQ(Sites[0].Callee->getName(), "q");
}

//===----------------------------------------------------------------------===//
// Side effects
//===----------------------------------------------------------------------===//

TEST(SideEffectsTest, DirectGlobalEffects) {
  auto Prog = compile(workload::Section6Globals);
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  const RoutineDecl *P = Prog->getMain()->findNested("p");
  const RoutineEffects &E = SEA.effects(P);
  EXPECT_TRUE(hasGlobal(E.GRef, "x"));
  EXPECT_FALSE(hasGlobal(E.GRef, "z")) << "z is written, not read";
  EXPECT_TRUE(hasGlobal(E.GMod, "z"));
  EXPECT_FALSE(hasGlobal(E.GMod, "x"));
  EXPECT_TRUE(E.ModParams.count(0)) << "var param y is written";
  EXPECT_TRUE(E.RefParams.count(0)) << "y is read by z := y - x";
  EXPECT_FALSE(SEA.programIsSideEffectFree());
}

TEST(SideEffectsTest, TransitiveEffectsThroughCalls) {
  auto Prog = compile("program p; var g: integer;"
                      "procedure leaf; begin g := 1; end;"
                      "procedure mid; begin leaf; end;"
                      "procedure top; begin mid; end;"
                      "begin top; end.");
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  const RoutineDecl *Top = Prog->getMain()->findNested("top");
  EXPECT_TRUE(hasGlobal(SEA.effects(Top).GMod, "g"));
}

TEST(SideEffectsTest, EffectsThroughVarParams) {
  auto Prog = compile("program p; var g: integer;"
                      "procedure setit(var v: integer); begin v := 9; end;"
                      "procedure caller; begin setit(g); end;"
                      "begin caller; end.");
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  const RoutineDecl *Caller = Prog->getMain()->findNested("caller");
  EXPECT_TRUE(hasGlobal(SEA.effects(Caller).GMod, "g"))
      << "modification of g funneled through setit's var param";
}

TEST(SideEffectsTest, UpLevelLocalIsCalleeSideEffectButNotCallers) {
  auto Prog = compile("program p;"
                      "procedure outer; var m: integer;"
                      "  procedure inner; begin m := 1; end;"
                      "begin inner; end;"
                      "begin outer; end.");
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  const RoutineDecl *Outer = Prog->getMain()->findNested("outer");
  const RoutineDecl *Inner = Outer->findNested("inner");
  EXPECT_TRUE(hasGlobal(SEA.effects(Inner).GMod, "m"));
  // m is outer's own local, so outer has no *global* side effect.
  EXPECT_TRUE(SEA.effects(Outer).GMod.empty());
}

TEST(SideEffectsTest, RecursiveRoutinesConverge) {
  auto Prog = compile("program p; var g: integer;"
                      "procedure rec(n: integer);"
                      "begin if n > 0 then begin g := g + n; rec(n - 1); end;"
                      "end;"
                      "begin rec(3); end.");
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  const RoutineDecl *Rec = Prog->getMain()->findNested("rec");
  EXPECT_TRUE(hasGlobal(SEA.effects(Rec).GMod, "g"));
  EXPECT_TRUE(hasGlobal(SEA.effects(Rec).GRef, "g"));
}

TEST(SideEffectsTest, Figure4IsSideEffectFreeExceptNothing) {
  // Figure 4's routines communicate only through parameters.
  auto Prog = compile(workload::Figure4Buggy);
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  EXPECT_TRUE(SEA.programIsSideEffectFree());
}

TEST(SideEffectsTest, FunctionResultIsNotASideEffect) {
  auto Prog = compile("program p; var r: integer;"
                      "function f: integer; begin f := 1; end;"
                      "begin r := f(); end.");
  CallGraph CG(*Prog);
  SideEffectAnalysis SEA(*Prog, CG);
  const RoutineDecl *F = Prog->getMain()->findNested("f");
  EXPECT_TRUE(SEA.effects(F).GMod.empty());
}

//===----------------------------------------------------------------------===//
// CFG
//===----------------------------------------------------------------------===//

struct CFGFixture {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<SideEffectAnalysis> SEA;

  explicit CFGFixture(std::string_view Src) {
    DiagnosticsEngine Diags;
    Prog = parseAndCheck(Src, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
    CG = std::make_unique<CallGraph>(*Prog);
    SEA = std::make_unique<SideEffectAnalysis>(*Prog, *CG);
  }

  CFG make(const RoutineDecl *R) { return CFG(R, *SEA); }
};

TEST(CFGTest, StraightLine) {
  CFGFixture F("program p; var x, y: integer;"
               "begin x := 1; y := x + 1; end.");
  CFG G = F.make(F.Prog->getMain());
  // entry, exit, 2 statements, 2 formal-outs (globals x and y).
  EXPECT_EQ(G.nodes().size(), 6u);
  EXPECT_EQ(G.entry()->succs().size(), 1u);
  EXPECT_TRUE(G.formalOutFor(F.Prog->getMain()->getLocals()[0].get()));
}

TEST(CFGTest, IfWithoutElseHasFallthroughEdge) {
  CFGFixture F("program p; var x: integer;"
               "begin if x > 0 then x := 1; x := 2; end.");
  CFG G = F.make(F.Prog->getMain());
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Pred = G.nodeFor(Body[0].get());
  ASSERT_TRUE(Pred);
  EXPECT_EQ(Pred->getKind(), CFGNode::Kind::Predicate);
  EXPECT_EQ(Pred->succs().size(), 2u);
}

TEST(CFGTest, WhileLoopHasBackEdge) {
  CFGFixture F("program p; var x: integer;"
               "begin while x > 0 do x := x - 1; end.");
  CFG G = F.make(F.Prog->getMain());
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Pred = G.nodeFor(Body[0].get());
  CFGNode *BodyNode =
      G.nodeFor(cast<WhileStmt>(Body[0].get())->getBody());
  ASSERT_TRUE(Pred && BodyNode);
  // body -> pred back edge.
  EXPECT_NE(std::find(BodyNode->succs().begin(), BodyNode->succs().end(),
                      Pred),
            BodyNode->succs().end());
}

TEST(CFGTest, GotoEdgesConnectToLabel) {
  CFGFixture F("program p; label 9; var x: integer;"
               "begin goto 9; x := 1; 9: x := 2; end.");
  CFG G = F.make(F.Prog->getMain());
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *GotoNode = G.nodeFor(Body[0].get());
  CFGNode *LabelNode = G.nodeFor(Body[2].get());
  ASSERT_TRUE(GotoNode && LabelNode);
  ASSERT_EQ(GotoNode->succs().size(), 1u);
  EXPECT_EQ(GotoNode->succs()[0], LabelNode);
  // x := 1 is unreachable: no predecessors.
  EXPECT_TRUE(G.nodeFor(Body[1].get())->preds().empty());
}

TEST(CFGTest, FormalBoundariesForProcedure) {
  CFGFixture F(workload::Section6Globals);
  const RoutineDecl *P = F.Prog->getMain()->findNested("p");
  CFG G = F.make(P);
  // formal-ins: y (var param), x (GRef). formal-outs: y (var), z (GMod).
  EXPECT_EQ(G.formalIns().size(), 2u);
  EXPECT_EQ(G.formalOuts().size(), 2u);
  EXPECT_TRUE(G.formalInFor(P->getParams()[0].get()));
  EXPECT_TRUE(G.formalOutFor(P->getParams()[0].get()));
}

TEST(CFGTest, FunctionHasResultFormalOut) {
  CFGFixture F("program p; var r: integer;"
               "function f(x: integer): integer; begin f := x; end;"
               "begin r := f(1); end.");
  const RoutineDecl *Fn = F.Prog->getMain()->findNested("f");
  CFG G = F.make(Fn);
  EXPECT_TRUE(G.resultFormalOut());
}

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

TEST(ReachingDefsTest, LinearKill) {
  CFGFixture F("program p; var x, y: integer;"
               "begin x := 1; x := 2; y := x; end.");
  CFG G = F.make(F.Prog->getMain());
  ReachingDefs RD(G, *F.SEA);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Use = G.nodeFor(Body[2].get());
  auto Defs = RD.reachingIn(Use, F.Prog->getMain()->getLocals()[0].get());
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], G.nodeFor(Body[1].get())) << "x := 2 kills x := 1";
}

TEST(ReachingDefsTest, BranchesMerge) {
  CFGFixture F("program p; var x, y: integer;"
               "begin if y > 0 then x := 1 else x := 2; y := x; end.");
  CFG G = F.make(F.Prog->getMain());
  ReachingDefs RD(G, *F.SEA);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Use = G.nodeFor(Body[1].get());
  auto Defs = RD.reachingIn(Use, F.Prog->getMain()->getLocals()[0].get());
  EXPECT_EQ(Defs.size(), 2u) << "both branch definitions reach the use";
}

TEST(ReachingDefsTest, ArrayWritesAreWeak) {
  CFGFixture F("program p; var a: array[1..3] of integer; i, x: integer;"
               "begin a[1] := 10; a[i] := 20; x := a[2]; end.");
  CFG G = F.make(F.Prog->getMain());
  ReachingDefs RD(G, *F.SEA);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Use = G.nodeFor(Body[2].get());
  auto Defs = RD.reachingIn(Use, F.Prog->getMain()->getLocals()[0].get());
  EXPECT_EQ(Defs.size(), 2u) << "element writes must not kill each other";
}

TEST(ReachingDefsTest, CallMediatedDefs) {
  CFGFixture F(workload::Section6Globals);
  CFG G = F.make(F.Prog->getMain());
  ReachingDefs RD(G, *F.SEA);
  // In main: x := 10; p(w); writeln(z) — the call defines z (and w).
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *WriteNode = G.nodeFor(Body[2].get());
  const VarDecl *Z = F.Prog->getMain()->findLocal("z");
  auto Defs = RD.reachingIn(WriteNode, Z);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], G.nodeFor(Body[1].get()));
}

//===----------------------------------------------------------------------===//
// Control dependence
//===----------------------------------------------------------------------===//

TEST(ControlDepTest, ThenBranchDependsOnIf) {
  CFGFixture F("program p; var x, y: integer;"
               "begin if x > 0 then y := 1; y := 2; end.");
  CFG G = F.make(F.Prog->getMain());
  ControlDependence CD(G);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Pred = G.nodeFor(Body[0].get());
  CFGNode *Then = G.nodeFor(cast<IfStmt>(Body[0].get())->getThen());
  CFGNode *After = G.nodeFor(Body[1].get());
  ASSERT_EQ(CD.controllersOf(Then).size(), 1u);
  EXPECT_EQ(CD.controllersOf(Then)[0], Pred);
  ASSERT_EQ(CD.controllersOf(After).size(), 1u);
  EXPECT_EQ(CD.controllersOf(After)[0], G.entry());
}

TEST(ControlDepTest, LoopBodyDependsOnLoopPredicate) {
  CFGFixture F("program p; var x: integer;"
               "begin while x > 0 do x := x - 1; end.");
  CFG G = F.make(F.Prog->getMain());
  ControlDependence CD(G);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Pred = G.nodeFor(Body[0].get());
  CFGNode *BodyNode = G.nodeFor(cast<WhileStmt>(Body[0].get())->getBody());
  ASSERT_EQ(CD.controllersOf(BodyNode).size(), 1u);
  EXPECT_EQ(CD.controllersOf(BodyNode)[0], Pred);
}

TEST(ControlDepTest, NestedIfs) {
  CFGFixture F("program p; var a, b, x: integer;"
               "begin if a > 0 then if b > 0 then x := 1; end.");
  CFG G = F.make(F.Prog->getMain());
  ControlDependence CD(G);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  const auto *Outer = cast<IfStmt>(Body[0].get());
  const auto *Inner = cast<IfStmt>(Outer->getThen());
  CFGNode *InnerPred = G.nodeFor(Inner);
  CFGNode *Assign = G.nodeFor(Inner->getThen());
  ASSERT_EQ(CD.controllersOf(Assign).size(), 1u);
  EXPECT_EQ(CD.controllersOf(Assign)[0], InnerPred);
  ASSERT_EQ(CD.controllersOf(InnerPred).size(), 1u);
  EXPECT_EQ(CD.controllersOf(InnerPred)[0], G.nodeFor(Outer));
}

TEST(ControlDepTest, PostDominanceQueries) {
  CFGFixture F("program p; var x: integer;"
               "begin if x > 0 then x := 1; x := 2; end.");
  CFG G = F.make(F.Prog->getMain());
  ControlDependence CD(G);
  const auto &Body = F.Prog->getMain()->getBody()->getBody();
  CFGNode *Pred = G.nodeFor(Body[0].get());
  CFGNode *Then = G.nodeFor(cast<IfStmt>(Body[0].get())->getThen());
  CFGNode *After = G.nodeFor(Body[1].get());
  EXPECT_TRUE(CD.postDominates(After, Pred));
  EXPECT_FALSE(CD.postDominates(Then, Pred));
  EXPECT_TRUE(CD.postDominates(G.exit(), G.entry()));
}

} // namespace
