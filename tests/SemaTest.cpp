//===- SemaTest.cpp - Semantic analysis unit tests ------------------------===//

#include "pascal/Frontend.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

using namespace gadt;
using namespace gadt::pascal;

namespace {

std::unique_ptr<Program> check(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

std::string checkError(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_EQ(Prog, nullptr) << "expected a semantic error";
  return Diags.str();
}

TEST(SemaTest, ResolvesLocalsAndGlobals) {
  auto Prog = check("program p; var g: integer;"
                    "procedure q; var l: integer;"
                    "begin l := g; g := l; end;"
                    "begin q; end.");
  RoutineDecl *Q = Prog->getMain()->findNested("q");
  const auto &Body = Q->getBody()->getBody();
  const auto *A0 = cast<AssignStmt>(Body[0].get());
  const auto *LRef = cast<VarRefExpr>(A0->getTarget());
  const auto *GRef = cast<VarRefExpr>(A0->getValue());
  ASSERT_TRUE(LRef->getDecl());
  ASSERT_TRUE(GRef->getDecl());
  EXPECT_EQ(LRef->getDecl()->getOwner(), Q);
  EXPECT_EQ(GRef->getDecl()->getOwner(), Prog->getMain());
}

TEST(SemaTest, ResolvesUpLevelVariablesInNestedRoutines) {
  auto Prog = check("program p;"
                    "procedure outer; var m: integer;"
                    "  procedure inner; begin m := 1; end;"
                    "begin inner; end;"
                    "begin outer; end.");
  RoutineDecl *Outer = Prog->getMain()->findNested("outer");
  RoutineDecl *Inner = Outer->findNested("inner");
  const auto *A = cast<AssignStmt>(Inner->getBody()->getBody()[0].get());
  EXPECT_EQ(cast<VarRefExpr>(A->getTarget())->getDecl()->getOwner(), Outer);
}

TEST(SemaTest, FunctionResultAssignment) {
  auto Prog = check("program p;"
                    "function f(x: integer): integer;"
                    "begin f := x * 2; end;"
                    "var y: integer;"
                    "begin y := f(3); end.");
  RoutineDecl *F = Prog->getMain()->findNested("f");
  ASSERT_TRUE(F->getResultVar());
  const auto *A = cast<AssignStmt>(F->getBody()->getBody()[0].get());
  EXPECT_EQ(cast<VarRefExpr>(A->getTarget())->getDecl(), F->getResultVar());
}

TEST(SemaTest, CallResolution) {
  auto Prog = check("program p;"
                    "procedure a; begin end;"
                    "procedure b; begin a; end;"
                    "begin b; end.");
  RoutineDecl *B = Prog->getMain()->findNested("b");
  const auto *PC = cast<ProcCallStmt>(B->getBody()->getBody()[0].get());
  EXPECT_EQ(PC->getCallee(), Prog->getMain()->findNested("a"));
}

TEST(SemaTest, RecursionResolves) {
  EXPECT_TRUE(check("program p;"
                    "function fact(n: integer): integer;"
                    "begin if n <= 1 then fact := 1 "
                    "else fact := n * fact(n - 1); end;"
                    "var r: integer;"
                    "begin r := fact(5); end."));
}

TEST(SemaTest, LocalGotoIsMarkedLocal) {
  auto Prog = check("program p; label 9; var x: integer;"
                    "begin goto 9; x := 1; 9: x := 2; end.");
  const auto *GS =
      cast<GotoStmt>(Prog->getMain()->getBody()->getBody()[0].get());
  EXPECT_FALSE(GS->isNonLocal());
  EXPECT_EQ(GS->getTargetRoutine(), Prog->getMain());
}

TEST(SemaTest, NonLocalGotoIsMarkedGlobal) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(workload::Section6GlobalGoto, Diags);
  ASSERT_TRUE(Prog) << Diags.str();
  RoutineDecl *P = Prog->getMain()->findNested("p");
  RoutineDecl *Q = P->findNested("q");
  bool FoundNonLocal = false;
  forEachStmt(Q->getBody(), [&](Stmt *S) {
    if (auto *GS = dyn_cast<GotoStmt>(S)) {
      EXPECT_TRUE(GS->isNonLocal());
      EXPECT_EQ(GS->getTargetRoutine(), P);
      FoundNonLocal = true;
    }
  });
  EXPECT_TRUE(FoundNonLocal);
}

TEST(SemaTest, LoopsGetUnitNames) {
  auto Prog = check("program p; var i, s: integer;"
                    "begin for i := 1 to 3 do s := s + i;"
                    "while s > 0 do s := s - 1; end.");
  const auto &Body = Prog->getMain()->getBody()->getBody();
  EXPECT_FALSE(cast<ForStmt>(Body[0].get())->getUnitName().empty());
  EXPECT_FALSE(cast<WhileStmt>(Body[1].get())->getUnitName().empty());
  EXPECT_NE(cast<ForStmt>(Body[0].get())->getUnitName(),
            cast<WhileStmt>(Body[1].get())->getUnitName());
}

TEST(SemaTest, NodeIdsAreAssigned) {
  auto Prog = check("program p; var x: integer; begin x := 1 + 2; end.");
  const auto *A = cast<AssignStmt>(Prog->getMain()->getBody()->getBody()[0].get());
  EXPECT_GT(A->getId(), 0u);
  EXPECT_GT(A->getValue()->getId(), 0u);
}

// Error cases ---------------------------------------------------------------

TEST(SemaTest, ErrorUndeclaredVariable) {
  std::string E = checkError("program p; begin x := 1; end.");
  EXPECT_NE(E.find("undeclared variable 'x'"), std::string::npos) << E;
}

TEST(SemaTest, ErrorUndeclaredRoutine) {
  std::string E = checkError("program p; begin nosuch(1); end.");
  EXPECT_NE(E.find("undeclared routine"), std::string::npos) << E;
}

TEST(SemaTest, ErrorTypeMismatchAssignment) {
  std::string E = checkError("program p; var x: integer; b: boolean;"
                             "begin x := b; end.");
  EXPECT_NE(E.find("cannot assign"), std::string::npos) << E;
}

TEST(SemaTest, ErrorConditionNotBoolean) {
  checkError("program p; var x: integer; begin if x then x := 1; end.");
}

TEST(SemaTest, ErrorArgumentCountMismatch) {
  checkError("program p; procedure q(a: integer); begin end;"
             "begin q(1, 2); end.");
}

TEST(SemaTest, ErrorVarArgumentMustBeVariable) {
  checkError("program p; procedure q(var a: integer); begin end;"
             "begin q(1 + 2); end.");
}

TEST(SemaTest, ErrorGotoUndeclaredLabel) {
  checkError("program p; begin goto 9; end.");
}

TEST(SemaTest, ErrorLabelNeverDefined) {
  checkError("program p; label 9; var x: integer; begin x := 1; end.");
}

TEST(SemaTest, ErrorLabelDefinedTwice) {
  checkError("program p; label 9; var x: integer;"
             "begin 9: x := 1; 9: x := 2; end.");
}

TEST(SemaTest, ErrorDuplicateLocal) {
  checkError("program p; procedure q(a: integer); var a: integer;"
             "begin end; begin q(1); end.");
}

TEST(SemaTest, ErrorIndexingNonArray) {
  checkError("program p; var x: integer; begin x[1] := 2; end.");
}

TEST(SemaTest, ErrorBooleanArithmetic) {
  checkError("program p; var b: boolean; begin b := true + false; end.");
}

TEST(SemaTest, ErrorCallingProcedureAsFunction) {
  checkError("program p; procedure q; begin end;"
             "var x: integer; begin x := q(); end.");
}

TEST(SemaTest, ErrorForLoopVarMustBeInteger) {
  checkError("program p; var b: boolean;"
             "begin for b := 1 to 3 do b := true; end.");
}

TEST(SemaTest, PaperProgramsPassSema) {
  EXPECT_TRUE(check(workload::Figure4Buggy));
  EXPECT_TRUE(check(workload::Figure4Fixed));
  EXPECT_TRUE(check(workload::Figure2));
  EXPECT_TRUE(check(workload::Section6Globals));
  EXPECT_TRUE(check(workload::Section6GlobalGoto));
  EXPECT_TRUE(check(workload::Section6LoopGoto));
  EXPECT_TRUE(check(workload::ArrsumProgram));
}

} // namespace
