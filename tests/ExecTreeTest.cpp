//===- ExecTreeTest.cpp - Execution tree tests (paper Figure 7) -----------===//

#include "trace/ExecTreeBuilder.h"

#include "pascal/Frontend.h"
#include "workload/PaperPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::trace;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

std::unique_ptr<ExecTree> trace(const Program &P, InterpOptions Opts = {},
                                std::vector<int64_t> Input = {}) {
  ExecResult Res;
  auto Tree = buildExecTree(P, Opts, std::move(Input), &Res);
  EXPECT_TRUE(Res.Ok) << Res.Error.Message;
  return Tree;
}

/// Finds the first node (preorder) whose unit name is \p Name.
ExecNode *findNode(ExecTree &T, const std::string &Name) {
  ExecNode *Found = nullptr;
  T.forEachNode([&](ExecNode *N) {
    if (!Found && N->getName() == Name)
      Found = N;
  });
  return Found;
}

TEST(ExecTreeTest, RootIsTheProgram) {
  auto Prog = compile("program tiny; var x: integer; begin x := 1; end.");
  auto Tree = trace(*Prog);
  ASSERT_TRUE(Tree->getRoot());
  EXPECT_EQ(Tree->getRoot()->getName(), "tiny");
  EXPECT_EQ(Tree->getRoot()->getId(), 1u);
  EXPECT_TRUE(Tree->getRoot()->getChildren().empty());
}

TEST(ExecTreeTest, CallNodesRecordParamsInDeclaredOrder) {
  auto Prog = compile("program p; var r: integer;"
                      "procedure q(a, b: integer; var c: integer);"
                      "begin c := a * 10 + b; end;"
                      "begin q(1, 2, r); end.");
  auto Tree = trace(*Prog);
  ExecNode *Q = findNode(*Tree, "q");
  ASSERT_TRUE(Q);
  EXPECT_EQ(Q->signature(), "q(In a: 1, In b: 2, Out c: 12)");
}

TEST(ExecTreeTest, VarParamReadBeforeWriteShowsAsInput) {
  auto Prog = compile("program p; var r: integer;"
                      "procedure bump(var v: integer);"
                      "begin v := v + 1; end;"
                      "begin r := 41; bump(r); end.");
  auto Tree = trace(*Prog);
  ExecNode *B = findNode(*Tree, "bump");
  ASSERT_TRUE(B);
  EXPECT_EQ(B->signature(), "bump(In v: 41, Out v: 42)");
}

TEST(ExecTreeTest, GlobalSideEffectsAreRecorded) {
  auto Prog = compile(workload::Section6Globals);
  auto Tree = trace(*Prog);
  ExecNode *P = findNode(*Tree, "p");
  ASSERT_TRUE(P);
  // p reads global x and writes global z through side effects.
  ASSERT_TRUE(P->findInput("x"));
  EXPECT_EQ(P->findInput("x")->V.asInt(), 10);
  ASSERT_TRUE(P->findOutput("z"));
  EXPECT_EQ(P->findOutput("z")->V.asInt(), 1);
  ASSERT_TRUE(P->findOutput("y"));
  EXPECT_EQ(P->findOutput("y")->V.asInt(), 11);
}

TEST(ExecTreeTest, FunctionNodesRenderResult) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  ExecNode *D = findNode(*Tree, "decrement");
  ASSERT_TRUE(D);
  EXPECT_EQ(D->signature(), "decrement(In y: 3)=4");
}

TEST(ExecTreeTest, Figure7TreeShape) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);

  // The paper's Figure 7, rendered by our tree printer (root node added for
  // the Main program).
  const char *Expected =
      R"(main(Out isok: false)
  sqrtest(In ary: [1, 2], In n: 2, Out isok: false)
    arrsum(In a: [1, 2], In n: 2, Out b: 3)
    computs(In y: 3, Out r1: 12, Out r2: 9)
      comput1(In y: 3, Out r1: 12)
        partialsums(In y: 3, Out s1: 6, Out s2: 6)
          sum1(In y: 3, Out s1: 6)
            increment(In y: 3)=4
          sum2(In y: 3, Out s2: 6)
            decrement(In y: 3)=4
        add(In s1: 6, In s2: 6, Out r1: 12)
      comput2(In y: 3, Out r2: 9)
        square(In y: 3, Out r2: 9)
    test(In r1: 12, In r2: 9, Out isok: false)
)";
  EXPECT_EQ(Tree->str(), Expected);
}

TEST(ExecTreeTest, Figure7NodeCount) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  // 13 unit executions from Figure 7 plus the Main root.
  EXPECT_EQ(Tree->size(), 14u);
}

TEST(ExecTreeTest, NodeLookupById) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  ExecNode *Sqrtest = findNode(*Tree, "sqrtest");
  ASSERT_TRUE(Sqrtest);
  EXPECT_EQ(Tree->node(Sqrtest->getId()), Sqrtest);
  EXPECT_EQ(Tree->node(9999), nullptr);
}

TEST(ExecTreeTest, ParentPointers) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  ExecNode *Dec = findNode(*Tree, "decrement");
  ASSERT_TRUE(Dec);
  EXPECT_EQ(Dec->getParent()->getName(), "sum2");
  EXPECT_EQ(Dec->getParent()->getParent()->getName(), "partialsums");
}

TEST(ExecTreeTest, LoopUnitsAppearWhenEnabled) {
  auto Prog = compile(workload::Figure4Buggy);
  InterpOptions Opts;
  Opts.TraceLoops = true;
  auto Tree = trace(*Prog, Opts);
  ExecNode *Loop = findNode(*Tree, "arrsum.for#1");
  ASSERT_TRUE(Loop);
  EXPECT_EQ(Loop->getKind(), UnitKind::Loop);
  EXPECT_EQ(Loop->getParent()->getName(), "arrsum");
  // The loop reads a and n (and the running b) and writes b and i.
  EXPECT_TRUE(Loop->findInput("n"));
  EXPECT_TRUE(Loop->findOutput("b"));
  ASSERT_TRUE(Loop->findOutput("i"));
  EXPECT_EQ(Loop->findOutput("i")->V.asInt(), 2);
}

TEST(ExecTreeTest, IterationUnitsAppearWhenEnabled) {
  auto Prog = compile(workload::Figure4Buggy);
  InterpOptions Opts;
  Opts.TraceLoops = true;
  Opts.TraceIterations = true;
  auto Tree = trace(*Prog, Opts);
  ExecNode *Loop = findNode(*Tree, "arrsum.for#1");
  ASSERT_TRUE(Loop);
  ASSERT_EQ(Loop->getChildren().size(), 2u);
  EXPECT_EQ(Loop->getChildren()[0]->getKind(), UnitKind::Iteration);
  EXPECT_EQ(Loop->getChildren()[0]->getIterIndex(), 1u);
  EXPECT_EQ(Loop->getChildren()[1]->getIterIndex(), 2u);
}

TEST(ExecTreeTest, LoopTracingPreservesCallChildren) {
  auto Prog = compile("program p; var s, i: integer;"
                      "function inc(x: integer): integer;"
                      "begin inc := x + 1; end;"
                      "begin s := 0;"
                      "for i := 1 to 3 do s := inc(s); end.");
  InterpOptions Opts;
  Opts.TraceLoops = true;
  auto Tree = trace(*Prog, Opts);
  ExecNode *Loop = findNode(*Tree, "p.for#1");
  ASSERT_TRUE(Loop);
  // Calls made inside the loop hang off the loop unit.
  EXPECT_EQ(Loop->getChildren().size(), 3u);
  EXPECT_EQ(Loop->getChildren()[0]->getName(), "inc");
}

TEST(ExecTreeTest, SubtreeSizeAndStrAgree) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  std::string Rendered = Tree->str();
  unsigned Lines = 0;
  for (char C : Rendered)
    if (C == '\n')
      ++Lines;
  EXPECT_EQ(Lines, Tree->size());
}

} // namespace

namespace {

TEST(ExecTreeTest, DotExport) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  std::string Dot = Tree->dot();
  EXPECT_NE(Dot.find("digraph exectree"), std::string::npos);
  EXPECT_NE(Dot.find("decrement(In y: 3)=4"), std::string::npos);
  EXPECT_NE(Dot.find(" -> "), std::string::npos);
  // 14 nodes, 13 edges.
  size_t Edges = 0;
  for (size_t Pos = Dot.find(" -> "); Pos != std::string::npos;
       Pos = Dot.find(" -> ", Pos + 1))
    ++Edges;
  EXPECT_EQ(Edges, 13u);
}

TEST(ExecTreeTest, DotEscapesQuotesAndBackslashes) {
  // Unit names flow into dot labels verbatim; quotes and backslashes must
  // come out escaped or the digraph is syntactically broken.
  ExecTreeBuilder B;
  UnitStart S;
  S.NodeId = 1;
  S.Name = "we\"ird\\name";
  B.enterUnit(S);
  B.exitUnit(1, {}, {});
  auto Tree = B.takeTree();
  std::string Dot = Tree->dot();
  EXPECT_NE(Dot.find("we\\\"ird\\\\name"), std::string::npos) << Dot;
  EXPECT_EQ(Dot.find("we\"ird"), std::string::npos)
      << "unescaped quote leaked into the label";
}

/// A pathological single chain of \p Depth nested units, built by replaying
/// listener events (the interpreter's call-depth limit keeps real programs
/// far shallower).
std::unique_ptr<ExecTree> chainTree(uint32_t Depth) {
  ExecTreeBuilder B;
  for (uint32_t Id = 1; Id <= Depth; ++Id) {
    UnitStart S;
    S.NodeId = Id;
    S.Name = "u";
    B.enterUnit(S);
  }
  for (uint32_t Id = Depth; Id >= 1; --Id)
    B.exitUnit(Id, {}, {});
  return B.takeTree();
}

TEST(ExecTreeTest, DeepTreeTraversalsAreIterative) {
  // 150k-deep chain: every traversal (forEachNode, dot, parent walk) and
  // destruction must be iterative — any recursion over depth overflows the
  // stack long before this.
  constexpr uint32_t Depth = 150000;
  auto Tree = chainTree(Depth);
  ASSERT_TRUE(Tree->getRoot());
  EXPECT_EQ(Tree->size(), Depth);
  EXPECT_EQ(Tree->getRoot()->subtreeSize(), Depth);

  unsigned Count = 0;
  Tree->forEachNode([&](ExecNode *) { ++Count; });
  EXPECT_EQ(Count, Depth);

  // Walk leaf -> root.
  const ExecNode *Leaf = Tree->node(Depth);
  ASSERT_TRUE(Leaf);
  unsigned Hops = 0;
  for (const ExecNode *N = Leaf; N; N = N->getParent())
    ++Hops;
  EXPECT_EQ(Hops, Depth);

  // dot() output is linear in the node count (constant indent), so it is
  // safe to render at full depth; one label and one edge line per node.
  std::string Dot = Tree->dot();
  size_t Lines = static_cast<size_t>(
      std::count(Dot.begin(), Dot.end(), '\n'));
  // Two header lines, Depth labels, Depth-1 edges, one closing brace.
  EXPECT_EQ(Lines, size_t(2) * Depth + 2);
  // Destruction happens at scope exit; a recursive destructor would crash.
}

TEST(ExecTreeTest, DeepTreeStrRendersEveryLevel) {
  // str() output is quadratic in depth (indentation), so correctness is
  // checked at a depth that still defeats recursive implementations.
  constexpr uint32_t Depth = 4096;
  auto Tree = chainTree(Depth);
  std::string Rendered = Tree->str();
  size_t Lines = static_cast<size_t>(
      std::count(Rendered.begin(), Rendered.end(), '\n'));
  EXPECT_EQ(Lines, Depth);
  // The last line is the deepest node at indent 2*(Depth-1).
  size_t LastLine = Rendered.rfind("u()");
  ASSERT_NE(LastLine, std::string::npos);
  size_t PrevNl = Rendered.rfind('\n', LastLine);
  ASSERT_NE(PrevNl, std::string::npos);
  EXPECT_EQ(LastLine - PrevNl - 1, size_t(2) * (Depth - 1));
}

TEST(ExecTreeTest, DotExportMarksPrunedNodes) {
  auto Prog = compile(workload::Figure4Buggy);
  auto Tree = trace(*Prog);
  ExecNode *Computs = findNode(*Tree, "computs");
  ASSERT_TRUE(Computs);
  support::NodeSet Kept(Tree->maxNodeId() + 1);
  Kept.insert(Computs->getId());
  std::string Dot = Tree->dot(&Kept);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
}

} // namespace
