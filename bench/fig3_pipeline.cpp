//===- fig3_pipeline.cpp - The functional structure (Figure 3) ------------===//
//
// Experiment F3 (DESIGN.md): drive every component of the paper's Figure 3
// architecture over one subject and report the artifact each phase
// produces — transformation actions, execution-tree size, dependence-graph
// size, test-database contents, and the debugging dialogue summary.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/SDG.h"
#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "pascal/PrettyPrinter.h"
#include "support/StringUtils.h"
#include "tgen/FrameGen.h"
#include "tgen/SpecParser.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"

using namespace gadt;
using namespace gadt::core;

int main() {
  bench::Expectations E;
  std::printf("Figure 3: the GADT pipeline on the Figure 4 program\n\n");

  // Phase I: transformation (the subject is already side-effect free, so
  // the demonstration uses the Section 6 goto program for this phase).
  auto GotoProg = bench::compileOrDie(workload::Section6GlobalGoto);
  DiagnosticsEngine Diags;
  transform::TransformResult TR =
      transform::transformProgram(*GotoProg, Diags);
  if (!TR.Transformed)
    return 2;
  std::printf("phase I  (transformation, on section6-global-goto):\n");
  std::printf("  gotos broken: %u, exit params: %u, globals converted: %u, "
              "loops rewritten: %u\n",
              TR.Stats.GotosBroken, TR.Stats.ExitParamsAdded,
              TR.Stats.GlobalsConverted, TR.Stats.LoopsRewritten);
  E.expect(TR.Stats.GotosBroken > 0, "phase I performs work");

  // Phase II: tracing.
  auto Buggy = bench::compileOrDie(workload::Figure4Buggy);
  auto Fixed = bench::compileOrDie(workload::Figure4Fixed);
  GADTOptions Opts;
  GADTSession Session(*Buggy, Opts, Diags);
  if (!Session.valid())
    return 2;

  // Phase III inputs: dependence graph + test database.
  analysis::SDG G(Session.subject());
  std::printf("phase II  (static analysis): SDG %zu vertices, %u edges "
              "(%u summary), %zu call sites\n",
              G.nodes().size(), G.numEdges(), G.numSummaryEdges(),
              G.calls().size());
  E.expect(G.numSummaryEdges() > 0, "summary edges computed");

  std::shared_ptr<tgen::TestSpec> Spec =
      tgen::parseSpec(workload::ArrsumSpec, Diags);
  tgen::FrameSet Frames = tgen::generateFrames(*Spec);
  auto DB = std::make_shared<tgen::TestReportDB>(tgen::runTestSuite(
      *Fixed, *Spec, Frames, workload::instantiateArrsumFrame,
      workload::checkArrsumOutcome));
  Session.addTestDatabase(Spec, DB);
  std::printf("phase II' (T-GEN): %zu frames, %u test cases passed\n",
              Frames.Frames.size(), DB->passCount());

  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  std::printf("phase III (tracing + debugging): tree %u nodes; dialogue: "
              "%u judgements, %u by user, %u unanswered; %u slices pruning "
              "%u nodes\n",
              Session.tree()->size(), Session.stats().Judgements,
              Session.stats().userQueries(), Session.stats().Unanswered,
              Session.stats().SlicingActivations,
              Session.stats().NodesPruned);
  std::printf("verdict: %s\n", R.Message.c_str());

  E.expect(R.Found && R.UnitName == "decrement", "bug localized");
  E.expect(Session.tree()->size() == 14, "tree matches Figure 7");
  return E.finish("fig3_pipeline");
}
