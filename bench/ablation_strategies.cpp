//===- ablation_strategies.cpp - Search-strategy ablation (X2) ------------===//
//
// Experiment X2 (DESIGN.md): the paper notes that "generally it doesn't
// matter which traversal method is used" for correctness — all strategies
// localize the same unit — but their interaction costs differ widely. We
// compare top-down, divide-and-query and the exhaustive bottom-up baseline
// over a corpus of random buggy programs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "interp/Interpreter.h"
#include "workload/Synthetic.h"

using namespace gadt;
using namespace gadt::core;

int main() {
  bench::Expectations E;
  std::printf("X2: strategy ablation over random buggy programs "
              "(user queries; all strategies must localize the planted "
              "bug)\n\n");
  std::printf("%8s %8s %10s %14s %10s\n", "seed", "units", "top-down",
              "divide+query", "bottom-up");

  unsigned SumTD = 0, SumDQ = 0, SumBU = 0, Subjects = 0;
  for (uint32_t Seed = 1; Seed <= 40 && Subjects < 12; ++Seed) {
    workload::SyntheticOptions Opts;
    Opts.Seed = Seed * 7919 + 3;
    Opts.NumRoutines = 4 + Seed % 4;
    workload::ProgramPair Pair = workload::randomProgram(Opts);
    auto Buggy = bench::compileOrDie(Pair.Buggy);
    auto Fixed = bench::compileOrDie(Pair.Fixed);
    {
      // Only debuggable when the bug manifests.
      interp::Interpreter IB(*Buggy), IF(*Fixed);
      if (IB.run().Output == IF.run().Output)
        continue;
    }
    ++Subjects;

    unsigned Queries[3] = {0, 0, 0};
    unsigned Units = 0;
    int Index = 0;
    for (SearchStrategy Strategy :
         {SearchStrategy::TopDown, SearchStrategy::DivideAndQuery,
          SearchStrategy::BottomUp}) {
      DiagnosticsEngine Diags;
      GADTOptions GOpts;
      GOpts.Debugger.Strategy = Strategy;
      GOpts.Debugger.Slicing = SliceMode::None;
      GADTSession Session(*Buggy, GOpts, Diags);
      if (!Session.valid())
        return 2;
      IntendedProgramOracle User(*Fixed);
      BugReport R = Session.debug(User);
      E.expect(R.Found && R.UnitName == Pair.BuggyRoutine,
               "seed " + std::to_string(Seed) + ": strategy " +
                   std::to_string(Index) + " localizes " +
                   Pair.BuggyRoutine);
      Queries[Index++] = Session.stats().userQueries();
      Units = Session.tree()->size();
    }
    SumTD += Queries[0];
    SumDQ += Queries[1];
    SumBU += Queries[2];
    std::printf("%8u %8u %10u %14u %10u\n", Opts.Seed, Units, Queries[0],
                Queries[1], Queries[2]);
  }
  std::printf("\n%8s %8s %10u %14u %10u   (totals over %u subjects)\n", "",
              "", SumTD, SumDQ, SumBU, Subjects);
  E.expect(Subjects >= 8, "enough manifesting seeds in the corpus");
  return E.finish("ablation_strategies");
}
