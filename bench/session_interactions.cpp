//===- session_interactions.cpp - Reproduce the Section 8 session ---------===//
//
// Experiment S8 (DESIGN.md): replay the paper's Section 8 debugging
// session on the Figure 4 program and count interactions under each
// configuration. The paper's claim: "this hybrid debugger can help the
// user localize the bug through a greatly reduced number of interactions,
// compared to pure algorithmic debugging", with the arrsum query answered
// from the test database and two slices shrinking the tree.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "tgen/FrameGen.h"
#include "tgen/SpecParser.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"

using namespace gadt;
using namespace gadt::core;

namespace {

struct Config {
  const char *Name;
  bool TestDB;
  SliceMode Slicing;
  SearchStrategy Strategy = SearchStrategy::TopDown;
};

struct Row {
  std::string Name;
  bool Found = false;
  std::string Unit;
  unsigned User = 0;
  unsigned Auto = 0;
  unsigned Slices = 0;
  unsigned Pruned = 0;
};

} // namespace

int main() {
  bench::Expectations E;
  auto Buggy = bench::compileOrDie(workload::Figure4Buggy);
  auto Fixed = bench::compileOrDie(workload::Figure4Fixed);

  DiagnosticsEngine Diags;
  std::shared_ptr<tgen::TestSpec> Spec =
      tgen::parseSpec(workload::ArrsumSpec, Diags);
  tgen::FrameSet Frames = tgen::generateFrames(*Spec);
  auto DB = std::make_shared<tgen::TestReportDB>(tgen::runTestSuite(
      *Fixed, *Spec, Frames, workload::instantiateArrsumFrame,
      workload::checkArrsumOutcome));

  const Config Configs[] = {
      {"pure AD (Shapiro-style)", false, SliceMode::None},
      {"AD + static slicing", false, SliceMode::Static},
      {"AD + test database", true, SliceMode::None},
      {"full GADT (slicing + tests)", true, SliceMode::Static},
      {"full GADT, dynamic slicing", true, SliceMode::Dynamic},
      {"full GADT, divide-and-query", true, SliceMode::Static,
       SearchStrategy::DivideAndQuery},
  };

  std::printf("Section 8: interaction counts debugging the Figure 4 "
              "program (bug: decrement computes y+1)\n\n");
  std::printf("%-30s %9s %9s %7s %7s  %s\n", "configuration", "user",
              "auto", "slices", "pruned", "localized in");

  std::vector<Row> Rows;
  std::string FullGadtTranscript;
  for (const Config &C : Configs) {
    GADTOptions Opts;
    Opts.Debugger.Slicing = C.Slicing;
    Opts.Debugger.Strategy = C.Strategy;
    GADTSession Session(*Buggy, Opts, Diags);
    if (!Session.valid())
      return 2;
    if (C.TestDB)
      Session.addTestDatabase(Spec, DB);
    IntendedProgramOracle User(*Fixed);
    BugReport R = Session.debug(User);

    Row Out;
    Out.Name = C.Name;
    Out.Found = R.Found;
    Out.Unit = R.UnitName;
    Out.User = Session.stats().userQueries();
    Out.Auto = Session.stats().Judgements - Out.User -
               Session.stats().Unanswered;
    Out.Slices = Session.stats().SlicingActivations;
    Out.Pruned = Session.stats().NodesPruned;
    Rows.push_back(Out);
    std::printf("%-30s %9u %9u %7u %7u  %s\n", Out.Name.c_str(), Out.User,
                Out.Auto, Out.Slices, Out.Pruned, Out.Unit.c_str());
    if (std::string(C.Name) == "full GADT (slicing + tests)")
      FullGadtTranscript = Session.stats().transcript();
  }

  std::printf("\nthe full GADT dialogue (paper Section 8):\n%s",
              FullGadtTranscript.c_str());

  for (const Row &R : Rows)
    E.expect(R.Found && R.Unit == "decrement",
             R.Name + " localizes the bug in decrement");
  E.expect(Rows[0].User == 8, "pure AD needs 8 user interactions here");
  E.expect(Rows[3].User == 6,
           "full GADT needs 6 (arrsum answered by the test database, sum1 "
           "sliced away)");
  E.expect(Rows[3].User < Rows[0].User,
           "GADT strictly reduces user interactions (the paper's claim)");
  E.expect(Rows[3].Auto >= 1, "at least one query answered automatically");
  E.expect(Rows[1].Pruned > 0, "slicing prunes execution-tree nodes");
  return E.finish("session_interactions");
}
