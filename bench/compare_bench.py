#!/usr/bin/env python3
"""Diff two perf_micro --json files (or combined baseline files) with a
regression threshold.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [options]

Options:
  --max-regression R   Fail (exit 1) when current/baseline exceeds R for any
                       compared benchmark (default: 1.5).
  --filter REGEX       Only gate on benchmarks whose name matches REGEX
                       (others are still printed, marked "info"). Default:
                       gate on everything present in both files.
  --metric NAME        JSON field to compare (default: cpu_ns).
  --normalize NAME     Divide every time by the named benchmark's time from
                       the same file before comparing. This cancels the
                       absolute speed of the machine, which makes a committed
                       baseline meaningful on different hardware (CI).
  --geomean            Append a summary row with the geometric mean of the
                       gated ratios (the single number to quote for a
                       many-benchmark comparison; unlike the arithmetic
                       mean it is symmetric in speedups and slowdowns).

Accepted file shapes:
  * a raw perf_micro export: {"bench": "perf_micro", "results": [...]}
  * a combined baseline:     {"perf_micro": {...}, "batch_throughput": {...}}

Exit status: 0 when no gated benchmark regressed past the threshold,
1 otherwise, 2 on usage/schema errors.
"""

import argparse
import json
import math
import re
import sys


def load_results(path, metric):
    with open(path) as f:
        doc = json.load(f)
    if "perf_micro" in doc and "results" not in doc:
        doc = doc["perf_micro"]
    if doc.get("bench") != "perf_micro" or "results" not in doc:
        sys.exit(f"error: {path} is not a perf_micro JSON export")
    out = {}
    for row in doc["results"]:
        if metric not in row:
            sys.exit(f"error: {path}: result {row.get('name')!r} has no "
                     f"field {metric!r}")
        out[row["name"]] = float(row[metric])
    return out


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=1.5)
    ap.add_argument("--filter", default=None)
    ap.add_argument("--metric", default="cpu_ns")
    ap.add_argument("--normalize", default=None)
    ap.add_argument("--geomean", action="store_true")
    args = ap.parse_args()

    base = load_results(args.baseline, args.metric)
    cur = load_results(args.current, args.metric)

    if args.normalize:
        for name, table in (("baseline", base), ("current", cur)):
            if args.normalize not in table or table[args.normalize] <= 0:
                sys.exit(f"error: --normalize benchmark {args.normalize!r} "
                         f"missing from {name} file")
        base = {k: v / base[args.normalize] for k, v in base.items()}
        cur = {k: v / cur[args.normalize] for k, v in cur.items()}

    gate = re.compile(args.filter) if args.filter else None
    common = [n for n in base if n in cur]
    if not common:
        sys.exit("error: the two files share no benchmark names")

    width = max(len(n) for n in common)
    unit = "x-of-ref" if args.normalize else "ns"
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict   [{args.metric}, {unit}]")
    failed = []
    gated_ratios = []
    for name in common:
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        gated = gate is None or gate.search(name)
        if not gated:
            verdict = "info"
        else:
            gated_ratios.append(ratio)
            if ratio > args.max_regression:
                verdict = "REGRESSED"
                failed.append(name)
            elif ratio < 1 / args.max_regression:
                verdict = "improved"
            else:
                verdict = "ok"
        print(f"{name:<{width}}  {base[name]:>12.1f}  {cur[name]:>12.1f}  "
              f"{ratio:>6.2f}x  {verdict}")

    if args.geomean and gated_ratios:
        finite = [r for r in gated_ratios if 0 < r < float("inf")]
        if finite:
            gm = math.exp(sum(math.log(r) for r in finite) / len(finite))
            label = "geomean (gated)"
            print(f"{label:<{width}}  {'':>12}  {'':>12}  {gm:>6.2f}x  "
                  f"over {len(finite)} benchmark(s)")

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    if only_base:
        print(f"note: only in baseline: {', '.join(only_base)}")
    if only_cur:
        print(f"note: only in current: {', '.join(only_cur)}")

    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) regressed past "
              f"{args.max_regression}x: {', '.join(failed)}")
        return 1
    print(f"\nOK: no gated benchmark regressed past {args.max_regression}x "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
