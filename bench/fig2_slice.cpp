//===- fig2_slice.cpp - Reproduce paper Figure 2 --------------------------===//
//
// Experiment F2 (DESIGN.md): slice the example program p on variable mul
// at the last line and print the reduced program. The paper's Figure 2(b)
// keeps read(x,y), mul := 0, the predicate and mul := x*y, and drops
// everything about sum and z.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/SDG.h"
#include "pascal/PrettyPrinter.h"
#include "slicing/ProgramProjection.h"
#include "slicing/StaticSlicer.h"
#include "workload/PaperPrograms.h"

using namespace gadt;
using namespace gadt::slicing;

int main() {
  bench::Expectations E;
  auto Prog = bench::compileOrDie(workload::Figure2);

  analysis::SDG G(*Prog);
  StaticSlice Slice = sliceOnProgramVar(G, *Prog, "mul");
  DiagnosticsEngine Diags;
  auto Projected = projectSlice(*Prog, Slice, Diags);
  if (!Projected) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  std::string Before = pascal::printProgram(*Prog);
  std::string After = pascal::printProgram(*Projected);
  std::printf("Figure 2(a): the original program\n%s\n", Before.c_str());
  std::printf("Figure 2(b): the slice on mul at the last line\n%s\n",
              After.c_str());
  std::printf("SDG: %zu vertices, %u edges (%u summary); slice covers %zu "
              "vertices\n",
              G.nodes().size(), G.numEdges(), G.numSummaryEdges(),
              Slice.size());

  E.expect(After.find("read(x, y)") != std::string::npos,
           "read(x, y) is kept");
  E.expect(After.find("mul := 0") != std::string::npos, "mul := 0 is kept");
  E.expect(After.find("if x <= 1") != std::string::npos,
           "the predicate is kept");
  E.expect(After.find("mul := x * y") != std::string::npos,
           "mul := x * y is kept");
  E.expect(After.find("sum") == std::string::npos,
           "everything about sum is sliced away");
  E.expect(After.find("z") == std::string::npos ||
               After.find("z:") == std::string::npos,
           "z and read(z) are sliced away");
  E.expect(After.size() < Before.size(), "the slice is smaller");
  return E.finish("fig2_slice");
}
