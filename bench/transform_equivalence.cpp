//===- transform_equivalence.cpp - Section 6 round-trip check -------------===//
//
// Experiment S9b (DESIGN.md): the transformation catalogue must preserve
// semantics ("the execution semantics of the original and the transformed
// program are equivalent", Section 5.2). We sweep random programs — with
// loops, global side effects and non-local gotos — and compare the output
// of each program against its transformed form.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "interp/Interpreter.h"
#include "transform/Transform.h"
#include "workload/Synthetic.h"

using namespace gadt;

int main() {
  bench::Expectations E;
  std::printf("Section 5.2/6: semantic equivalence of original vs "
              "transformed, random corpus\n\n");
  std::printf("%-14s %8s %10s %10s %10s\n", "corpus", "programs",
              "equal-out", "side-eff-free", "gotos-local");

  struct Corpus {
    const char *Name;
    bool Gotos;
  };
  for (const Corpus &C : {Corpus{"plain", false}, Corpus{"with-gotos", true}}) {
    unsigned Programs = 0, EqualOut = 0, Clean = 0, GotosLocal = 0;
    for (uint32_t Seed = 1; Seed <= 40; ++Seed) {
      workload::SyntheticOptions Opts;
      Opts.Seed = Seed * 17 + (C.Gotos ? 5 : 0);
      Opts.NumRoutines = 3 + Seed % 5;
      Opts.NumGlobals = 1 + Seed % 3;
      Opts.UseGotos = C.Gotos;
      workload::ProgramPair Pair = workload::randomProgram(Opts);
      auto Prog = bench::compileOrDie(Pair.Fixed);
      DiagnosticsEngine Diags;
      transform::TransformResult R =
          transform::transformProgram(*Prog, Diags);
      if (!R.Transformed)
        return 2;
      ++Programs;

      interp::Interpreter IO(*Prog), IX(*R.Transformed);
      interp::ExecResult RO = IO.run(), RX = IX.run();
      if (RO.Ok && RX.Ok && RO.Output == RX.Output)
        ++EqualOut;

      analysis::CallGraph CG(*R.Transformed);
      analysis::SideEffectAnalysis SEA(*R.Transformed, CG);
      if (SEA.programIsSideEffectFree())
        ++Clean;

      bool NonLocal = false;
      pascal::forEachRoutine(R.Transformed->getMain(),
                             [&](pascal::RoutineDecl *Rt) {
                               if (Rt->getBody())
                                 pascal::forEachStmt(
                                     Rt->getBody(), [&](pascal::Stmt *S) {
                                       if (auto *GS =
                                               dyn_cast<pascal::GotoStmt>(S))
                                         NonLocal |= GS->isNonLocal();
                                     });
                             });
      if (!NonLocal)
        ++GotosLocal;
    }
    std::printf("%-14s %8u %10u %10u %10u\n", C.Name, Programs, EqualOut,
                Clean, GotosLocal);
    E.expect(EqualOut == Programs,
             std::string(C.Name) + ": all outputs identical");
    E.expect(Clean == Programs,
             std::string(C.Name) + ": all transformed programs side-effect "
                                   "free");
    E.expect(GotosLocal == Programs,
             std::string(C.Name) + ": all gotos local after transformation");
  }
  return E.finish("transform_equivalence");
}
