//===- ablation_memoization.cpp - Answer reuse ablation (X6) --------------===//
//
// Experiment X6: Shapiro's debugger "acquires knowledge about the expected
// behavior of the debugged program and uses this knowledge to localize
// errors" — once a unit execution has been judged, identical executions
// need no new question. Recursive programs with overlapping subcomputations
// (the classic naive Fibonacci) make the effect dramatic; this bench
// debugs a buggy Fibonacci with judgement memoization on and off.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/GADT.h"
#include "core/ReferenceOracle.h"

#include <string>

using namespace gadt;
using namespace gadt::core;

namespace {

std::string fibProgram(unsigned N, bool Buggy) {
  // The bug fires only for the outermost call (n = N): all the
  // exponentially repeated subcalls behave correctly, so the debugger must
  // clear every one of them before reaching the culprit.
  std::string S = "program f; var r: integer;";
  S += "function fib(n: integer): integer;"
       "begin if n <= 1 then fib := n";
  if (Buggy)
    S += " else if n = " + std::to_string(N) +
         " then fib := fib(n - 1) + fib(n - 2) + 1";
  S += " else fib := fib(n - 1) + fib(n - 2); end;";
  S += "begin r := fib(" + std::to_string(N) + "); writeln(r); end.";
  return S;
}

} // namespace

int main() {
  bench::Expectations E;
  std::printf("X6: judgement memoization on naive Fibonacci (bug in the "
              "combination step)\n\n");
  std::printf("%6s %8s %14s %14s %10s\n", "n", "units", "queries(off)",
              "queries(on)", "memo-hits");

  for (unsigned N : {6u, 8u, 10u, 12u}) {
    auto Buggy = bench::compileOrDie(fibProgram(N, true));
    auto Fixed = bench::compileOrDie(fibProgram(N, false));

    unsigned Queries[2] = {0, 0}, Hits = 0, Units = 0;
    for (int Memo = 0; Memo <= 1; ++Memo) {
      DiagnosticsEngine Diags;
      GADTOptions Opts;
      // Bottom-up shows the full effect: it would otherwise judge every
      // duplicated subcall.
      Opts.Debugger.Strategy = SearchStrategy::BottomUp;
      Opts.Debugger.Slicing = SliceMode::None;
      Opts.Debugger.MemoizeJudgements = Memo == 1;
      GADTSession Session(*Buggy, Opts, Diags);
      if (!Session.valid())
        return 2;
      IntendedProgramOracle User(*Fixed);
      BugReport R = Session.debug(User);
      E.expect(R.Found && R.UnitName == "fib", "bug localized in fib");
      Queries[Memo] = Session.stats().userQueries();
      if (Memo) {
        Hits = Session.stats().MemoHits;
        Units = Session.tree()->size();
      }
    }
    std::printf("%6u %8u %14u %14u %10u\n", N, Units, Queries[0],
                Queries[1], Hits);
    E.expect(Queries[1] < Queries[0],
             "memoization reduces queries at n=" + std::to_string(N));
    E.expect(Queries[1] <= N + 2,
             "with memoization the dialogue is linear in n");
  }
  return E.finish("ablation_memoization");
}
