//===- ablation_slicing.cpp - Static vs dynamic slicing (X3) --------------===//
//
// Experiment X3 (DESIGN.md): the paper uses static interprocedural slicing
// and cites Kamkar's dynamic variant as under implementation. We compare
// both on execution-tree pruning: how many nodes each retains for the same
// criterion, and what that does to the interaction count. Dynamic slices
// are never larger than static ones (they see one concrete run).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/SDG.h"
#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

using namespace gadt;
using namespace gadt::core;
using namespace gadt::slicing;

namespace {

/// Retained-node comparison on one criterion node/output.
void compareRetention(const char *Label, const pascal::Program &P,
                      const std::string &Unit, const std::string &Output,
                      bench::Expectations &E) {
  analysis::SDG G(P);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  interp::ExecResult Res;
  auto Tree = trace::buildExecTree(P, Opts, {}, &Res);
  if (!Res.Ok)
    std::exit(2);
  trace::ExecNode *Criterion = nullptr;
  Tree->forEachNode([&](trace::ExecNode *N) {
    if (!Criterion && N->getName() == Unit)
      Criterion = N;
  });
  if (!Criterion)
    std::exit(2);

  unsigned Total = Criterion->subtreeSize();
  StaticSlice SSlice = sliceOnRoutineOutput(G, Criterion->getRoutine(),
                                            Output);
  unsigned StaticKept =
      countRetained(Criterion, pruneByStaticSlice(Criterion, SSlice));
  unsigned DynamicKept =
      countRetained(Criterion, dynamicSlice(Criterion, Output));
  std::printf("%-22s %-14s %9u %9u %9u\n", Label,
              (Unit + "." + Output).c_str(), Total, StaticKept,
              DynamicKept);
  E.expect(DynamicKept <= StaticKept,
           std::string(Label) + ": dynamic slice is at most the static one");
  E.expect(StaticKept <= Total, "slices never add nodes");
}

} // namespace

int main() {
  bench::Expectations E;
  std::printf("X3: execution-tree nodes retained by slice variant\n\n");
  std::printf("%-22s %-14s %9s %9s %9s\n", "subject", "criterion",
              "subtree", "static", "dynamic");

  auto Fig4 = bench::compileOrDie(workload::Figure4Buggy);
  compareRetention("figure4", *Fig4, "computs", "r1", E);
  compareRetention("figure4", *Fig4, "partialsums", "s2", E);
  compareRetention("figure4", *Fig4, "sqrtest", "isok", E);

  workload::ProgramPair Wide = workload::wideIrrelevantProgram(16);
  auto WideProg = bench::compileOrDie(Wide.Buggy);
  compareRetention("wide-16", *WideProg, "p", "b", E);

  // A branch-dependent subject where only the dynamic slice can drop the
  // untaken call.
  const char *Branchy =
      "program b; var x, r: integer;"
      "function f(a: integer): integer; begin f := a + 1; end;"
      "function g(a: integer): integer; begin g := a + 2; end;"
      "procedure pick(sel: integer; var out1: integer);"
      "var t: integer;"
      "begin t := f(sel); if sel > 0 then out1 := t else out1 := g(sel);"
      "end;"
      "begin x := 0 - 5; pick(x, r); writeln(r); end.";
  auto BranchyProg = bench::compileOrDie(Branchy);
  compareRetention("branchy", *BranchyProg, "pick", "out1", E);

  // End-to-end interaction comparison on the paper session.
  std::printf("\nuser queries on the Figure 4 session: ");
  unsigned Queries[2];
  int Index = 0;
  for (SliceMode Mode : {SliceMode::Static, SliceMode::Dynamic}) {
    DiagnosticsEngine Diags;
    GADTOptions Opts;
    Opts.Debugger.Slicing = Mode;
    GADTSession Session(*Fig4, Opts, Diags);
    if (!Session.valid())
      return 2;
    auto Fixed = bench::compileOrDie(workload::Figure4Fixed);
    IntendedProgramOracle User(*Fixed);
    BugReport R = Session.debug(User);
    E.expect(R.Found && R.UnitName == "decrement", "bug found");
    Queries[Index++] = Session.stats().userQueries();
  }
  std::printf("static=%u dynamic=%u\n", Queries[0], Queries[1]);
  E.expect(Queries[1] <= Queries[0],
           "dynamic slicing never needs more interactions here");
  return E.finish("ablation_slicing");
}
