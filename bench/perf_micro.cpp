//===- perf_micro.cpp - Microbenchmarks (X4/X9) ---------------------------===//
//
// Experiment X4 (DESIGN.md): google-benchmark timings of the pipeline
// stages — front-end, tracing (with and without dependence tracking),
// transformation, SDG construction, slice queries, frame generation — on
// the paper's programs and growing synthetic subjects. These quantify the
// engineering costs the paper discusses qualitatively (Section 9: trace
// size and transformation overheads).
//
// Experiment X9 (EXPERIMENTS.md): the interpreter-bound cases (BM_Interpret*
// and BM_Trace*) are the regression gate for the hot-path work — every run
// is repeated (min-of-N with a warm-up phase) so the --json numbers are
// stable enough to diff across commits with bench/compare_bench.py.
//
//===----------------------------------------------------------------------===//

#include "analysis/SDG.h"
#include "bytecode/Bytecode.h"
#include "core/Debugger.h"
#include "core/GADT.h"
#include "interp/Interpreter.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "pascal/Frontend.h"
#include "runtime/EditSession.h"
#include "runtime/RuntimeContext.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"
#include "support/JSON.h"
#include "tgen/FrameGen.h"
#include "tgen/SpecParser.h"
#include "trace/ExecTreeBuilder.h"
#include "transform/Transform.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <unistd.h>
#include <unordered_set>

using namespace gadt;

namespace {

std::unique_ptr<pascal::Program> compileOrDie(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Src, Diags);
  if (!Prog)
    std::abort();
  return Prog;
}

/// A loop-heavy deterministic synthetic subject for the interpreter-bound
/// cases (fixed seed: the same program on every run and every machine).
const workload::ProgramPair &syntheticSubject() {
  static workload::ProgramPair Pair = [] {
    workload::SyntheticOptions Opts;
    Opts.Seed = 42;
    Opts.NumRoutines = 8;
    Opts.NumGlobals = 4;
    Opts.StmtsPerRoutine = 8;
    Opts.UseLoops = true;
    return workload::randomProgram(Opts);
  }();
  return Pair;
}

void BM_ParseAndCheckFigure4(benchmark::State &State) {
  std::string Src = workload::Figure4Buggy;
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    auto Prog = pascal::parseAndCheck(Src, Diags);
    benchmark::DoNotOptimize(Prog);
  }
}
BENCHMARK(BM_ParseAndCheckFigure4);

void BM_ParseAndCheckChain(benchmark::State &State) {
  std::string Src = workload::chainProgram(
                        static_cast<unsigned>(State.range(0)), 1)
                        .Fixed;
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    auto Prog = pascal::parseAndCheck(Src, Diags);
    benchmark::DoNotOptimize(Prog);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ParseAndCheckChain)->Range(8, 256)->Complexity();

void BM_TraceFigure4(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  for (auto _ : State) {
    auto Tree = trace::buildExecTree(*Prog, {}, {});
    benchmark::DoNotOptimize(Tree);
  }
}
BENCHMARK(BM_TraceFigure4);

void BM_TraceFigure4WithDeps(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  for (auto _ : State) {
    auto Tree = trace::buildExecTree(*Prog, Opts, {});
    benchmark::DoNotOptimize(Tree);
  }
}
BENCHMARK(BM_TraceFigure4WithDeps);

void BM_InterpretChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  for (auto _ : State) {
    interp::Interpreter I(*Prog);
    auto R = I.run();
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_InterpretChain)->Range(8, 256)->Complexity();

/// Interpreter-bound, dependence tracking on, no listener: pure cost of the
/// dependence substrate (DepSet merges, control-dep stacks, cell stores).
void BM_InterpretChainDeps(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  for (auto _ : State) {
    interp::Interpreter I(*Prog, Opts);
    auto R = I.run();
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_InterpretChainDeps)->Range(8, 256)->Complexity();

/// Full tracing pipeline on the call chain with dependence tracking — the
/// exact configuration every dynamic slice pays for.
void BM_TraceChainDeps(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  for (auto _ : State) {
    auto Tree = trace::buildExecTree(*Prog, Opts, {});
    benchmark::DoNotOptimize(Tree);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_TraceChainDeps)->Range(8, 256)->Complexity();

/// Loop-heavy synthetic subject, dependence tracking on, no listener.
void BM_InterpretSyntheticDeps(benchmark::State &State) {
  auto Prog = compileOrDie(syntheticSubject().Fixed);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  for (auto _ : State) {
    interp::Interpreter I(*Prog, Opts);
    auto R = I.run();
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_InterpretSyntheticDeps);

/// The paper's most expensive configuration: loops and iterations as
/// debugging units plus dependence tracking, with a tree listener attached.
void BM_TraceSyntheticLoopsItersDeps(benchmark::State &State) {
  auto Prog = compileOrDie(syntheticSubject().Fixed);
  interp::InterpOptions Opts;
  Opts.TraceLoops = true;
  Opts.TraceIterations = true;
  Opts.TrackDeps = true;
  for (auto _ : State) {
    auto Tree = trace::buildExecTree(*Prog, Opts, {});
    benchmark::DoNotOptimize(Tree);
  }
}
BENCHMARK(BM_TraceSyntheticLoopsItersDeps);

//===--------------------------------------------------------------------===//
// Execution-tier benchmarks (X12): the bytecode VM against the tree
// walker on the dependence-tracking hot path. The interpreter is
// constructed ONCE outside the timing loop, so bytecode compilation is
// excluded and the numbers isolate execution. GADT_EXEC_TIER switches the
// tier for A/B captures (see EXPERIMENTS.md X12 and compare_bench.py).
//===--------------------------------------------------------------------===//

/// Dependence tracking down a deep call chain, warm interpreter: DepSet
/// merges, pooled cell stores and unit events with no listener attached.
void BM_TrackDepsChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  interp::Interpreter I(*Prog, Opts);
  for (auto _ : State) {
    auto R = I.run();
    benchmark::DoNotOptimize(R.Ok);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_TrackDepsChain)->Range(8, 256)->Complexity();

/// Dependence tracking over the loop-heavy synthetic subject, warm
/// interpreter — loop control flow rather than call depth.
void BM_TrackDepsSynthetic(benchmark::State &State) {
  auto Prog = compileOrDie(syntheticSubject().Fixed);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  interp::Interpreter I(*Prog, Opts);
  for (auto _ : State) {
    auto R = I.run();
    benchmark::DoNotOptimize(R.Ok);
  }
}
BENCHMARK(BM_TrackDepsSynthetic);

/// Plain execution (no dependence tracking, no listener) with a warm
/// interpreter: the floor the dispatch loop itself sets.
void BM_TrackDepsOffChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  interp::Interpreter I(*Prog);
  for (auto _ : State) {
    auto R = I.run();
    benchmark::DoNotOptimize(R.Ok);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_TrackDepsOffChain)->Range(8, 256)->Complexity();

/// Bytecode compilation cost on the chain — what the RuntimeContext code
/// cache amortizes away (one compile serves every session of a subject).
void BM_BytecodeCompileChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  for (auto _ : State) {
    auto Code = bytecode::compile(*Prog, /*Checked=*/false);
    benchmark::DoNotOptimize(Code);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BytecodeCompileChain)->Range(8, 256)->Complexity();

/// Serial batch-session proxy in the compare_bench schema: warm
/// RuntimeContext (program/transform/code caches hit), one full debug
/// session per subject per iteration. The parallel version lives in
/// bench/batch_throughput.cpp; this serial proxy is the per-session cost
/// the A/B gate watches.
void BM_BatchThroughputSerial(benchmark::State &State) {
  std::vector<std::string> Sources = {
      workload::Figure4Buggy, workload::Figure4Fixed,
      workload::chainProgram(32, 1).Fixed, syntheticSubject().Fixed};
  obs::Registry Reg;
  runtime::RuntimeContext Ctx(&Reg);
  core::GADTOptions Opts;
  core::LambdaOracle O(
      [](const trace::ExecNode &) {
        return core::Judgement::correct("bench");
      },
      "bench");
  for (auto _ : State) {
    for (const std::string &Src : Sources) {
      DiagnosticsEngine Diags;
      auto Artifacts = Ctx.prepare(Src, Opts, Diags);
      core::GADTSession S(Artifacts, Opts, Diags);
      auto R = S.debug(O, {});
      benchmark::DoNotOptimize(R.Found);
    }
  }
}
BENCHMARK(BM_BatchThroughputSerial);

void BM_TransformGotoProgram(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Section6GlobalGoto);
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    auto R = transform::transformProgram(*Prog, Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformGotoProgram);

void BM_BuildSDGFigure4(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  for (auto _ : State) {
    analysis::SDG G(*Prog);
    benchmark::DoNotOptimize(G.numEdges());
  }
}
BENCHMARK(BM_BuildSDGFigure4);

void BM_BuildSDGChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  for (auto _ : State) {
    analysis::SDG G(*Prog);
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BuildSDGChain)->Range(8, 128)->Complexity();

void BM_StaticSliceQuery(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  analysis::SDG G(*Prog);
  const pascal::RoutineDecl *Computs =
      Prog->getMain()->findNested("computs");
  for (auto _ : State) {
    auto Slice = slicing::sliceOnRoutineOutput(G, Computs, "r1");
    benchmark::DoNotOptimize(Slice.size());
  }
}
BENCHMARK(BM_StaticSliceQuery);

void BM_GenerateArrsumFrames(benchmark::State &State) {
  DiagnosticsEngine Diags;
  auto Spec = tgen::parseSpec(workload::ArrsumSpec, Diags);
  if (!Spec)
    std::abort();
  for (auto _ : State) {
    auto Frames = tgen::generateFrames(*Spec);
    benchmark::DoNotOptimize(Frames.Frames.size());
  }
}
BENCHMARK(BM_GenerateArrsumFrames);

void BM_RunArrsumTestSuite(benchmark::State &State) {
  DiagnosticsEngine Diags;
  auto Spec = tgen::parseSpec(workload::ArrsumSpec, Diags);
  auto Prog = compileOrDie(workload::Figure4Fixed);
  auto Frames = tgen::generateFrames(*Spec);
  for (auto _ : State) {
    auto DB = tgen::runTestSuite(*Prog, *Spec, Frames,
                                 workload::instantiateArrsumFrame,
                                 workload::checkArrsumOutcome);
    benchmark::DoNotOptimize(DB.passCount());
  }
}
BENCHMARK(BM_RunArrsumTestSuite);

//===--------------------------------------------------------------------===//
// Incremental-recompute benchmarks (X13): one edit-commit against a warm
// EditSession versus a forced cold rebuild of the same program. The
// sessions live outside the timing loop and each iteration alternates
// between two variants of the same routine, so every commit is a real
// edit (the fingerprint diff never short-circuits on identical text).
// Timing covers commit() only — parsing and checking the staged source is
// byte-for-byte identical work on both paths (and has its own benchmark,
// BM_ParseAndCheckFigure4), so the numbers isolate the recompute pipeline
// the transaction layer actually controls: fingerprint diff, dirty rules,
// PDG build/replay, summary solve, slice eviction and code splice.
// GADT_INCREMENTAL=0 forces full rebuilds inside the BM_Incremental*
// loops — that run is the baseline the CI perf gate compares against.
//===--------------------------------------------------------------------===//

constexpr unsigned kIncLeaves = 24;
/// Dense-block repetitions per leaf (see workload::incrementalEditProgram):
/// high enough that per-routine dependence analysis dominates the commit,
/// which is the regime the incremental machinery exists for.
constexpr unsigned kIncRounds = 8;

bool incrementalDisabled() {
  const char *E = getenv("GADT_INCREMENTAL");
  return E && std::string(E) == "0";
}

void BM_ColdRebuild(benchmark::State &State) {
  runtime::EditSessionOptions Opts;
  Opts.ForceFullRebuild = true;
  runtime::EditSession S(Opts);
  const std::string A = workload::incrementalEditProgram(kIncLeaves, 1, 1, kIncRounds);
  const std::string B = workload::incrementalEditProgram(kIncLeaves, 1, 2, kIncRounds);
  S.begin(A).commit();
  bool Flip = false;
  for (auto _ : State) {
    State.PauseTiming();
    auto T = S.begin(Flip ? A : B);
    State.ResumeTiming();
    auto St = T.commit();
    benchmark::DoNotOptimize(St.PdgRebuilt);
    Flip = !Flip;
  }
}
BENCHMARK(BM_ColdRebuild);

/// Re-commit after editing one leaf body out of kIncLeaves + 2 routines —
/// the surgical best case: one PDG rebuild, one routine recompiled,
/// everything else replayed.
void BM_IncrementalEditLeaf(benchmark::State &State) {
  runtime::EditSessionOptions Opts;
  Opts.ForceFullRebuild = incrementalDisabled();
  runtime::EditSession S(Opts);
  const std::string A = workload::incrementalEditProgram(kIncLeaves, 1, 1, kIncRounds);
  const std::string B = workload::incrementalEditProgram(kIncLeaves, 1, 2, kIncRounds);
  S.begin(A).commit();
  bool Flip = false;
  for (auto _ : State) {
    State.PauseTiming();
    auto T = S.begin(Flip ? A : B);
    State.ResumeTiming();
    auto St = T.commit();
    benchmark::DoNotOptimize(St.PdgReplayed);
    Flip = !Flip;
  }
}
BENCHMARK(BM_IncrementalEditLeaf);

/// Re-commit after editing the hub's body: one PDG rebuild too, but the
/// dirty routine calls every leaf, so the slice-perturbation frontier and
/// the summary re-solve (hub + main) are as wide as a single edit gets.
void BM_IncrementalEditHub(benchmark::State &State) {
  runtime::EditSessionOptions Opts;
  Opts.ForceFullRebuild = incrementalDisabled();
  runtime::EditSession S(Opts);
  const std::string A = workload::incrementalEditProgram(kIncLeaves, 0, 0, kIncRounds);
  std::string B = A;
  const std::string From = "  b := s;";
  B.replace(B.find(From), From.size(), "  b := s + 1;");
  S.begin(A).commit();
  bool Flip = false;
  for (auto _ : State) {
    State.PauseTiming();
    auto T = S.begin(Flip ? A : B);
    State.ResumeTiming();
    auto St = T.commit();
    benchmark::DoNotOptimize(St.SummaryRecomputed);
    Flip = !Flip;
  }
}
BENCHMARK(BM_IncrementalEditHub);

//===--------------------------------------------------------------------===//
// Debugger-strategy benchmarks (X10): search cost over large synthetic
// execution trees with a zero-latency perfect oracle, so the numbers
// isolate the tree bookkeeping — subtree weights, slice pruning, memo
// lookups — rather than oracle latency. These are the regression gate for
// the trace/slicing/debugger substrate.
//===--------------------------------------------------------------------===//

/// A traced buggy subject plus the node ids a perfect oracle judges
/// incorrect: every execution of the buggy routine and all its ancestors
/// (the erroneous path the search must follow down to the bug).
struct StrategyFixture {
  std::unique_ptr<pascal::Program> Prog;
  std::unique_ptr<trace::ExecTree> Tree;
  std::unordered_set<uint32_t> Bad;
};

StrategyFixture makeStrategyFixture(const workload::ProgramPair &Pair) {
  StrategyFixture F;
  F.Prog = compileOrDie(Pair.Buggy);
  F.Tree = trace::buildExecTree(*F.Prog, {}, {});
  F.Tree->forEachNode([&](trace::ExecNode *N) {
    if (N->getRoutine() && N->getRoutine()->getName() == Pair.BuggyRoutine)
      for (const trace::ExecNode *A = N; A; A = A->getParent())
        F.Bad.insert(A->getId());
  });
  return F;
}

core::LambdaOracle::Fn perfectOracle(const StrategyFixture &Fix) {
  return [&Fix](const trace::ExecNode &N) {
    return Fix.Bad.count(N.getId()) ? core::Judgement::incorrect("bench")
                                    : core::Judgement::correct("bench");
  };
}

/// Heaviest-first descent over a complete binary call tree (depth = range):
/// every level re-ranks the children by active subtree weight.
void BM_DebugTopDownHeaviestTree(benchmark::State &State) {
  auto Fix = makeStrategyFixture(
      workload::treeProgram(static_cast<unsigned>(State.range(0))));
  core::LambdaOracle O(perfectOracle(Fix), "bench");
  core::DebuggerOptions Opts;
  Opts.Strategy = core::SearchStrategy::TopDownHeaviest;
  Opts.Slicing = core::SliceMode::None;
  for (auto _ : State) {
    core::AlgorithmicDebugger D(*Fix.Tree, O, Opts);
    auto R = D.run();
    benchmark::DoNotOptimize(R.Found);
  }
  State.SetComplexityN(1 << State.range(0));
}
BENCHMARK(BM_DebugTopDownHeaviestTree)->DenseRange(8, 12, 2)->Complexity();

/// Shapiro's divide-and-query over the same binary tree: each round scans
/// every active candidate's subtree weight to find the half-weight pivot.
void BM_DebugDivideAndQueryTree(benchmark::State &State) {
  auto Fix = makeStrategyFixture(
      workload::treeProgram(static_cast<unsigned>(State.range(0))));
  core::LambdaOracle O(perfectOracle(Fix), "bench");
  core::DebuggerOptions Opts;
  Opts.Strategy = core::SearchStrategy::DivideAndQuery;
  Opts.Slicing = core::SliceMode::None;
  for (auto _ : State) {
    core::AlgorithmicDebugger D(*Fix.Tree, O, Opts);
    auto R = D.run();
    benchmark::DoNotOptimize(R.Found);
  }
  State.SetComplexityN(1 << State.range(0));
}
BENCHMARK(BM_DebugDivideAndQueryTree)->DenseRange(8, 12, 2)->Complexity();

/// Divide-and-query on a linear call chain — the weight-scan worst case:
/// O(active) candidates per round, each with an O(subtree) weight.
void BM_DebugDivideAndQueryChain(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  auto Fix = makeStrategyFixture(workload::chainProgram(N, N / 2));
  core::LambdaOracle O(perfectOracle(Fix), "bench");
  core::DebuggerOptions Opts;
  Opts.Strategy = core::SearchStrategy::DivideAndQuery;
  Opts.Slicing = core::SliceMode::None;
  for (auto _ : State) {
    core::AlgorithmicDebugger D(*Fix.Tree, O, Opts);
    auto R = D.run();
    benchmark::DoNotOptimize(R.Found);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DebugDivideAndQueryChain)->Range(64, 512)->Complexity();

/// The paper's Figure 5 scenario at scale: a wrong-output answer activates
/// static slicing, pruning the N-1 irrelevant calls, then the search
/// continues on the pruned tree.
void BM_DebugSliceThenSearchWide(benchmark::State &State) {
  auto Fix = makeStrategyFixture(
      workload::wideIrrelevantProgram(static_cast<unsigned>(State.range(0))));
  analysis::SDG G(*Fix.Prog);
  core::LambdaOracle O(
      [&Fix](const trace::ExecNode &N) {
        if (!Fix.Bad.count(N.getId()))
          return core::Judgement::correct("bench");
        std::string Wrong = N.getOutputs().empty()
                                ? std::string()
                                : std::string(N.getOutputs().back().Name);
        return core::Judgement::incorrect("bench", std::move(Wrong));
      },
      "bench");
  core::DebuggerOptions Opts;
  Opts.Strategy = core::SearchStrategy::TopDown;
  Opts.Slicing = core::SliceMode::Static;
  for (auto _ : State) {
    core::AlgorithmicDebugger D(*Fix.Tree, O, Opts);
    D.setSDG(&G);
    auto R = D.run();
    benchmark::DoNotOptimize(R.Found);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DebugSliceThenSearchWide)->Range(64, 256)->Complexity();

/// Static-slice pruning plus retained-count over the wide tree, without the
/// search on top — the raw prune/count substrate.
void BM_PruneStaticWide(benchmark::State &State) {
  auto Pair =
      workload::wideIrrelevantProgram(static_cast<unsigned>(State.range(0)));
  auto Prog = compileOrDie(Pair.Buggy);
  auto Tree = trace::buildExecTree(*Prog, {}, {});
  analysis::SDG G(*Prog);
  const pascal::RoutineDecl *P = Prog->getMain()->findNested("p");
  auto Slice = slicing::sliceOnRoutineOutput(G, P, "b");
  trace::ExecNode *PNode = nullptr;
  Tree->forEachNode([&](trace::ExecNode *N) {
    if (N->getRoutine() == P)
      PNode = N;
  });
  for (auto _ : State) {
    auto Kept = slicing::pruneByStaticSlice(PNode, Slice);
    benchmark::DoNotOptimize(slicing::countRetained(PNode, Kept));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PruneStaticWide)->Range(64, 512)->Complexity();

/// Dynamic slicing on the root output of a dependence-tracked chain: the
/// relevant-set closure walk over the whole tree.
void BM_DynamicSliceChainDeps(benchmark::State &State) {
  auto Pair = workload::chainProgram(static_cast<unsigned>(State.range(0)), 1);
  auto Prog = compileOrDie(Pair.Buggy);
  interp::InterpOptions IOpts;
  IOpts.TrackDeps = true;
  auto Tree = trace::buildExecTree(*Prog, IOpts, {});
  for (auto _ : State) {
    auto Kept = slicing::dynamicSlice(Tree->getRoot(), "r");
    benchmark::DoNotOptimize(Kept.size());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DynamicSliceChainDeps)->Range(64, 512)->Complexity();

//===--------------------------------------------------------------------===//
// Static-analysis substrate benchmarks (X11): SDG construction, the
// interprocedural summary-edge fixpoint, and two-phase slice queries over
// workload-generated programs. These are the regression gate for the
// analysis/slicing substrate.
//===--------------------------------------------------------------------===//

/// Whole-graph construction over the paper's Figure 5 shape at scale: many
/// routines with one call site each, flow-dominated.
void BM_SDGBuildWide(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::wideIrrelevantProgram(static_cast<unsigned>(State.range(0)))
          .Fixed);
  for (auto _ : State) {
    analysis::SDG G(*Prog);
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SDGBuildWide)->Range(64, 256)->Complexity();

/// Whole-graph construction over the layered call mesh (4 layers x W
/// routines, W^2 call sites per layer boundary): the interprocedural
/// summary-edge fixpoint dominates, with a dense actual-in/actual-out
/// frontier at every call site.
void BM_SummaryEdgesMesh(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::summaryMeshProgram(4, static_cast<unsigned>(State.range(0)))
          .Fixed);
  for (auto _ : State) {
    analysis::SDG G(*Prog);
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SummaryEdgesMesh)->RangeMultiplier(2)->Range(2, 8)->Complexity();

/// Backward slice from the top of the mesh: the two-phase walk descends
/// through every layer over parameter and summary edges.
void BM_StaticSliceMesh(benchmark::State &State) {
  auto Prog = compileOrDie(workload::summaryMeshProgram(4, 6).Fixed);
  analysis::SDG G(*Prog);
  const pascal::RoutineDecl *Top = Prog->getMain()->findNested("m1_1");
  for (auto _ : State) {
    auto Slice = slicing::sliceOnRoutineOutput(G, Top, "u");
    benchmark::DoNotOptimize(Slice.size());
  }
}
BENCHMARK(BM_StaticSliceMesh);

/// Backward slice down a long call chain: worst-case slice depth, every
/// routine entered through its formal-out.
void BM_StaticSliceChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1).Fixed);
  analysis::SDG G(*Prog);
  const pascal::RoutineDecl *P1 = Prog->getMain()->findNested("p1");
  for (auto _ : State) {
    auto Slice = slicing::sliceOnRoutineOutput(G, P1, "y");
    benchmark::DoNotOptimize(Slice.size());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_StaticSliceChain)->Range(64, 256)->Complexity();

/// Disabled-mode telemetry overhead (EXPERIMENTS.md X11): with no tracer,
/// profiler or log active, a span must cost one relaxed atomic load and a
/// branch, and a log call one load and a compare. These pin that contract
/// so telemetry growth cannot silently tax the production path.
void BM_SpanDisabledOverhead(benchmark::State &State) {
  if (obs::spansActive())
    State.SkipWithError("telemetry is active; disabled-cost bench is void");
  for (auto _ : State) {
    obs::Span S("bench.span", "bench");
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_SpanDisabledOverhead);

void BM_LogDisabledOverhead(benchmark::State &State) {
  for (auto _ : State) {
    obs::logInfo("bench", "never emitted");
    benchmark::DoNotOptimize(obs::Log::global());
  }
}
BENCHMARK(BM_LogDisabledOverhead);

/// The stock console reporter, additionally collecting every per-repetition
/// run so main() can export min-of-N aggregates as machine-readable JSON.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  // Match BENCHMARK_MAIN's behaviour of dropping colour codes when stdout
  // is not a terminal (pipes, CI logs, grep).
  CollectingReporter()
      : benchmark::ConsoleReporter(isatty(fileno(stdout))
                                       ? OO_ColorTabular
                                       : OO_Tabular) {}

  struct Result {
    std::string Name;
    double RealNanos = 0, CpuNanos = 0;
    uint64_t Iterations = 0;
    unsigned Reps = 0;
  };
  /// Min-of-N per benchmark name, in first-seen order.
  std::vector<Result> Results;

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      const std::string Name = R.benchmark_name();
      auto It = Index.find(Name);
      if (It == Index.end()) {
        Index.emplace(Name, Results.size());
        Results.push_back({Name, R.GetAdjustedRealTime(),
                           R.GetAdjustedCPUTime(),
                           static_cast<uint64_t>(R.iterations), 1});
        continue;
      }
      Result &Agg = Results[It->second];
      // Repetition of a benchmark we already saw: keep the fastest run.
      // min-of-N is the standard noise filter — the minimum is the run
      // least disturbed by scheduling/frequency jitter.
      if (R.GetAdjustedCPUTime() < Agg.CpuNanos) {
        Agg.CpuNanos = R.GetAdjustedCPUTime();
        Agg.RealNanos = R.GetAdjustedRealTime();
        Agg.Iterations = static_cast<uint64_t>(R.iterations);
      }
      ++Agg.Reps;
    }
    benchmark::ConsoleReporter::ReportRuns(Reports);
  }

private:
  std::map<std::string, size_t> Index;
};

void writeJson(const std::string &Path, unsigned Repetitions,
               const std::vector<CollectingReporter::Result> &Results) {
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject();
  W.key("bench").value("perf_micro");
  // Schema 2: real_ns/cpu_ns are min-of-N over `reps` repetitions (after a
  // warm-up phase), not a single run. See README "Benchmarks & JSON export".
  W.key("schema").value(2);
  W.key("repetitions").value(Repetitions);
  W.key("results").beginArray();
  for (const auto &R : Results) {
    W.beginObject();
    W.key("name").value(R.Name);
    W.key("real_ns").value(R.RealNanos);
    W.key("cpu_ns").value(R.CpuNanos);
    W.key("iterations").value(R.Iterations);
    W.key("reps").value(R.Reps);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::ofstream Out(Path);
  Out << Buf << "\n";
}

} // namespace

int main(int argc, char **argv) {
  // Peel off our own flags before google-benchmark sees the command line
  // (it rejects flags it does not know): --json <path> exports machine-
  // readable results, --reps <n> overrides the repetition count.
  std::string JsonPath;
  unsigned Reps = 5;
  bool UserSetReps = false;
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    std::string_view Arg(argv[I]);
    if (Arg == "--json" && I + 1 < argc) {
      JsonPath = argv[++I];
      continue;
    }
    if (Arg == "--reps" && I + 1 < argc) {
      Reps = static_cast<unsigned>(std::max(1, atoi(argv[++I])));
      UserSetReps = true;
      continue;
    }
    if (Arg.rfind("--benchmark_repetitions", 0) == 0)
      UserSetReps = true; // respect an explicit google-benchmark flag
    Args.push_back(argv[I]);
  }
  // Repetition + warm-up defaults, injected unless the caller overrode
  // them: each benchmark runs a short untimed warm-up, then N timed
  // repetitions; the reporter keeps the fastest (min-of-N).
  std::string RepFlag = "--benchmark_repetitions=" + std::to_string(Reps);
  std::string WarmupFlag = "--benchmark_min_warmup_time=0.05";
  if (!UserSetReps)
    Args.push_back(RepFlag.data());
  Args.push_back(WarmupFlag.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  CollectingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  if (!JsonPath.empty())
    writeJson(JsonPath, Reps, Reporter.Results);
  benchmark::Shutdown();
  return 0;
}
