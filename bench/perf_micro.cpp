//===- perf_micro.cpp - Microbenchmarks (X4) ------------------------------===//
//
// Experiment X4 (DESIGN.md): google-benchmark timings of the pipeline
// stages — front-end, tracing (with and without dependence tracking),
// transformation, SDG construction, slice queries, frame generation — on
// the paper's programs and growing synthetic subjects. These quantify the
// engineering costs the paper discusses qualitatively (Section 9: trace
// size and transformation overheads).
//
//===----------------------------------------------------------------------===//

#include "analysis/SDG.h"
#include "interp/Interpreter.h"
#include "pascal/Frontend.h"
#include "slicing/StaticSlicer.h"
#include "support/JSON.h"
#include "tgen/FrameGen.h"
#include "tgen/SpecParser.h"
#include "trace/ExecTreeBuilder.h"
#include "transform/Transform.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <unistd.h>

using namespace gadt;

namespace {

std::unique_ptr<pascal::Program> compileOrDie(const std::string &Src) {
  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Src, Diags);
  if (!Prog)
    std::abort();
  return Prog;
}

void BM_ParseAndCheckFigure4(benchmark::State &State) {
  std::string Src = workload::Figure4Buggy;
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    auto Prog = pascal::parseAndCheck(Src, Diags);
    benchmark::DoNotOptimize(Prog);
  }
}
BENCHMARK(BM_ParseAndCheckFigure4);

void BM_ParseAndCheckChain(benchmark::State &State) {
  std::string Src = workload::chainProgram(
                        static_cast<unsigned>(State.range(0)), 1)
                        .Fixed;
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    auto Prog = pascal::parseAndCheck(Src, Diags);
    benchmark::DoNotOptimize(Prog);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ParseAndCheckChain)->Range(8, 256)->Complexity();

void BM_TraceFigure4(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  for (auto _ : State) {
    auto Tree = trace::buildExecTree(*Prog, {}, {});
    benchmark::DoNotOptimize(Tree);
  }
}
BENCHMARK(BM_TraceFigure4);

void BM_TraceFigure4WithDeps(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true;
  for (auto _ : State) {
    auto Tree = trace::buildExecTree(*Prog, Opts, {});
    benchmark::DoNotOptimize(Tree);
  }
}
BENCHMARK(BM_TraceFigure4WithDeps);

void BM_InterpretChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  for (auto _ : State) {
    interp::Interpreter I(*Prog);
    auto R = I.run();
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_InterpretChain)->Range(8, 256)->Complexity();

void BM_TransformGotoProgram(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Section6GlobalGoto);
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    auto R = transform::transformProgram(*Prog, Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformGotoProgram);

void BM_BuildSDGFigure4(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  for (auto _ : State) {
    analysis::SDG G(*Prog);
    benchmark::DoNotOptimize(G.numEdges());
  }
}
BENCHMARK(BM_BuildSDGFigure4);

void BM_BuildSDGChain(benchmark::State &State) {
  auto Prog = compileOrDie(
      workload::chainProgram(static_cast<unsigned>(State.range(0)), 1)
          .Fixed);
  for (auto _ : State) {
    analysis::SDG G(*Prog);
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BuildSDGChain)->Range(8, 128)->Complexity();

void BM_StaticSliceQuery(benchmark::State &State) {
  auto Prog = compileOrDie(workload::Figure4Buggy);
  analysis::SDG G(*Prog);
  const pascal::RoutineDecl *Computs =
      Prog->getMain()->findNested("computs");
  for (auto _ : State) {
    auto Slice = slicing::sliceOnRoutineOutput(G, Computs, "r1");
    benchmark::DoNotOptimize(Slice.size());
  }
}
BENCHMARK(BM_StaticSliceQuery);

void BM_GenerateArrsumFrames(benchmark::State &State) {
  DiagnosticsEngine Diags;
  auto Spec = tgen::parseSpec(workload::ArrsumSpec, Diags);
  if (!Spec)
    std::abort();
  for (auto _ : State) {
    auto Frames = tgen::generateFrames(*Spec);
    benchmark::DoNotOptimize(Frames.Frames.size());
  }
}
BENCHMARK(BM_GenerateArrsumFrames);

void BM_RunArrsumTestSuite(benchmark::State &State) {
  DiagnosticsEngine Diags;
  auto Spec = tgen::parseSpec(workload::ArrsumSpec, Diags);
  auto Prog = compileOrDie(workload::Figure4Fixed);
  auto Frames = tgen::generateFrames(*Spec);
  for (auto _ : State) {
    auto DB = tgen::runTestSuite(*Prog, *Spec, Frames,
                                 workload::instantiateArrsumFrame,
                                 workload::checkArrsumOutcome);
    benchmark::DoNotOptimize(DB.passCount());
  }
}
BENCHMARK(BM_RunArrsumTestSuite);

/// The stock console reporter, additionally collecting every per-iteration
/// run so main() can export them as machine-readable JSON.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  // Match BENCHMARK_MAIN's behaviour of dropping colour codes when stdout
  // is not a terminal (pipes, CI logs, grep).
  CollectingReporter()
      : benchmark::ConsoleReporter(isatty(fileno(stdout))
                                       ? OO_ColorTabular
                                       : OO_Tabular) {}

  struct Result {
    std::string Name;
    double RealNanos = 0, CpuNanos = 0;
    uint64_t Iterations = 0;
  };
  std::vector<Result> Results;

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      Results.push_back({R.benchmark_name(), R.GetAdjustedRealTime(),
                         R.GetAdjustedCPUTime(),
                         static_cast<uint64_t>(R.iterations)});
    }
    benchmark::ConsoleReporter::ReportRuns(Reports);
  }
};

void writeJson(const std::string &Path,
               const std::vector<CollectingReporter::Result> &Results) {
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject();
  W.key("bench").value("perf_micro");
  W.key("schema").value(1);
  W.key("results").beginArray();
  for (const auto &R : Results) {
    W.beginObject();
    W.key("name").value(R.Name);
    W.key("real_ns").value(R.RealNanos);
    W.key("cpu_ns").value(R.CpuNanos);
    W.key("iterations").value(R.Iterations);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::ofstream Out(Path);
  Out << Buf << "\n";
}

} // namespace

int main(int argc, char **argv) {
  // Peel off our own --json <path> before google-benchmark sees the
  // command line (it rejects flags it does not know).
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--json" && I + 1 < argc) {
      JsonPath = argv[++I];
      continue;
    }
    Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  CollectingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  if (!JsonPath.empty())
    writeJson(JsonPath, Reporter.Results);
  benchmark::Shutdown();
  return 0;
}
