//===- fig8_slice1.cpp - Reproduce paper Figure 8 -------------------------===//
//
// Experiment F8 (DESIGN.md): after the user reports "no, error on first
// output variable" for computs(In y: 3, Out r1: 12, Out r2: 9), slice on
// r1 and print the pruned execution tree — the paper's Figure 8: from
// computs downward only the comput1 subtree is retained.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/SDG.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"

using namespace gadt;
using namespace gadt::slicing;

static const char *const ExpectedTree =
    R"(computs(In y: 3, Out r1: 12, Out r2: 9)
  comput1(In y: 3, Out r1: 12)
    partialsums(In y: 3, Out s1: 6, Out s2: 6)
      sum1(In y: 3, Out s1: 6)
        increment(In y: 3)=4
      sum2(In y: 3, Out s2: 6)
        decrement(In y: 3)=4
    add(In s1: 6, In s2: 6, Out r1: 12)
)";

int main() {
  bench::Expectations E;
  auto Prog = bench::compileOrDie(workload::Figure4Buggy);
  analysis::SDG G(*Prog);
  interp::ExecResult Res;
  auto Tree = trace::buildExecTree(*Prog, {}, {}, &Res);

  trace::ExecNode *Computs = nullptr;
  Tree->forEachNode([&](trace::ExecNode *N) {
    if (N->getName() == "computs")
      Computs = N;
  });
  if (!Computs)
    return 2;

  unsigned Before = Computs->subtreeSize();
  StaticSlice Slice = sliceOnRoutineOutput(G, Computs->getRoutine(), "r1");
  auto Kept = pruneByStaticSlice(Computs, Slice);
  std::string Rendered = renderPruned(Computs, Kept);

  std::printf("Figure 8: execution tree after slicing on computs output "
              "r1\n\n%s\n",
              Rendered.c_str());
  std::printf("subtree before: %u nodes, after: %u nodes\n", Before,
              countRetained(Computs, Kept));

  E.expect(Rendered == ExpectedTree, "tree matches the paper's Figure 8");
  E.expect(Before == 10 && countRetained(Computs, Kept) == 8,
           "comput2 and square are sliced away");
  return E.finish("fig8_slice1");
}
