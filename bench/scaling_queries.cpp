//===- scaling_queries.cpp - Interaction scaling with program size --------===//
//
// Experiment X1 (DESIGN.md): quantify the paper's headline claim ("these
// improvements together makes it more feasible to debug larger programs")
// by measuring user-interaction counts as the subject grows, for call
// chains (bug at the end — worst case for top-down) and call trees (bug in
// the rightmost leaf). Expected shape: top-down grows linearly,
// divide-and-query logarithmically, and slicing tracks the relevant path.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "workload/Synthetic.h"

using namespace gadt;
using namespace gadt::core;

namespace {

unsigned measure(const workload::ProgramPair &Pair, SearchStrategy Strategy,
                 SliceMode Slicing, const std::string &ExpectUnit,
                 bench::Expectations &E) {
  auto Buggy = bench::compileOrDie(Pair.Buggy);
  auto Fixed = bench::compileOrDie(Pair.Fixed);
  DiagnosticsEngine Diags;
  GADTOptions Opts;
  Opts.Debugger.Strategy = Strategy;
  Opts.Debugger.Slicing = Slicing;
  GADTSession Session(*Buggy, Opts, Diags);
  if (!Session.valid())
    std::exit(2);
  IntendedProgramOracle User(*Fixed);
  BugReport R = Session.debug(User);
  E.expect(R.Found && R.UnitName == ExpectUnit,
           "bug localized in " + ExpectUnit);
  return Session.stats().userQueries();
}

} // namespace

int main() {
  bench::Expectations E;

  std::printf("X1a: call chain p1 -> ... -> pN, bug in pN\n\n");
  std::printf("%6s %10s %14s %12s\n", "N", "top-down", "divide+query",
              "td+slicing");
  unsigned ChainTD64 = 0, ChainDQ64 = 0;
  for (unsigned N : {4u, 8u, 16u, 32u, 64u}) {
    workload::ProgramPair Pair = workload::chainProgram(N, N);
    unsigned TD = measure(Pair, SearchStrategy::TopDown, SliceMode::None,
                          Pair.BuggyRoutine, E);
    unsigned DQ = measure(Pair, SearchStrategy::DivideAndQuery,
                          SliceMode::None, Pair.BuggyRoutine, E);
    unsigned TDS = measure(Pair, SearchStrategy::TopDown, SliceMode::Static,
                           Pair.BuggyRoutine, E);
    std::printf("%6u %10u %14u %12u\n", N, TD, DQ, TDS);
    if (N == 64) {
      ChainTD64 = TD;
      ChainDQ64 = DQ;
    }
  }
  E.expect(ChainTD64 >= 64, "top-down grows linearly on chains");
  E.expect(ChainDQ64 <= 16, "divide-and-query stays logarithmic on chains");

  std::printf("\nX1b: complete binary call tree of depth D, bug in the "
              "rightmost leaf\n\n");
  std::printf("%6s %8s %10s %14s %12s\n", "depth", "units", "top-down",
              "divide+query", "td+slicing");
  for (unsigned D : {2u, 3u, 4u, 5u, 6u}) {
    workload::ProgramPair Pair = workload::treeProgram(D);
    unsigned Units = (1u << D) - 1;
    unsigned TD = measure(Pair, SearchStrategy::TopDown, SliceMode::None,
                          Pair.BuggyRoutine, E);
    unsigned DQ = measure(Pair, SearchStrategy::DivideAndQuery,
                          SliceMode::None, Pair.BuggyRoutine, E);
    unsigned TDS = measure(Pair, SearchStrategy::TopDown, SliceMode::Static,
                           Pair.BuggyRoutine, E);
    std::printf("%6u %8u %10u %14u %12u\n", D, Units, TD, DQ, TDS);
    E.expect(TD <= 2 * D + 2,
             "top-down on trees is proportional to depth*fanout");
  }

  std::printf("\nX1c: chain of length 32, bug position varies\n\n");
  std::printf("%10s %10s %14s\n", "bug-at", "top-down", "divide+query");
  for (unsigned K : {1u, 8u, 16u, 24u, 32u}) {
    workload::ProgramPair Pair = workload::chainProgram(32, K);
    unsigned TD = measure(Pair, SearchStrategy::TopDown, SliceMode::None,
                          Pair.BuggyRoutine, E);
    unsigned DQ = measure(Pair, SearchStrategy::DivideAndQuery,
                          SliceMode::None, Pair.BuggyRoutine, E);
    std::printf("%10u %10u %14u\n", K, TD, DQ);
  }
  return E.finish("scaling_queries");
}
