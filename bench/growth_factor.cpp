//===- growth_factor.cpp - Section 9 transformation growth claim ----------===//
//
// Experiment S9a (DESIGN.md): the paper reports that "small procedures
// usually grow less than a factor of two after transformations". We
// measure non-blank source lines before and after the transformation
// pipeline for the paper's examples and a corpus of random programs with
// global side effects and non-local gotos.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pascal/PrettyPrinter.h"
#include "support/StringUtils.h"
#include "transform/Transform.h"
#include "workload/PaperPrograms.h"
#include "workload/Payroll.h"
#include "workload/Synthetic.h"

#include <string>
#include <vector>

using namespace gadt;

int main() {
  bench::Expectations E;
  std::printf("Section 9: source growth through the transformation phase\n"
              "(claim: small procedures usually grow less than 2x)\n\n");
  std::printf("%-24s %8s %8s %8s  %s\n", "program", "before", "after",
              "factor", "actions");

  struct Subject {
    std::string Name;
    std::string Source;
  };
  std::vector<Subject> Subjects = {
      {"section6-globals", workload::Section6Globals},
      {"section6-global-goto", workload::Section6GlobalGoto},
      {"section6-loop-goto", workload::Section6LoopGoto},
      {"figure4", workload::Figure4Buggy},
      {"payroll", workload::PayrollCorrect},
  };
  for (uint32_t Seed = 1; Seed <= 8; ++Seed) {
    workload::SyntheticOptions Opts;
    Opts.Seed = Seed;
    Opts.NumRoutines = 3 + Seed % 4;
    Opts.UseGotos = Seed % 2 == 0;
    Subjects.push_back({"random-" + std::to_string(Seed),
                        workload::randomProgram(Opts).Fixed});
  }

  double WorstFactor = 0;
  unsigned Under2x = 0;
  for (const Subject &S : Subjects) {
    auto Prog = bench::compileOrDie(S.Source);
    DiagnosticsEngine Diags;
    transform::TransformResult R = transform::transformProgram(*Prog, Diags);
    if (!R.Transformed) {
      std::fprintf(stderr, "%s: %s\n", S.Name.c_str(), Diags.str().c_str());
      return 2;
    }
    unsigned Before = countCodeLines(pascal::printProgram(*Prog));
    unsigned After = countCodeLines(pascal::printProgram(*R.Transformed));
    double Factor = static_cast<double>(After) / Before;
    WorstFactor = Factor > WorstFactor ? Factor : WorstFactor;
    Under2x += Factor < 2.0;
    unsigned Actions = R.Stats.GlobalsConverted + R.Stats.GotosBroken +
                       R.Stats.LoopsRewritten;
    std::printf("%-24s %8u %8u %8.2f  %u\n", S.Name.c_str(), Before, After,
                Factor, Actions);
  }

  std::printf("\nworst factor: %.2f; %u/%zu subjects under 2x\n",
              WorstFactor, Under2x, Subjects.size());
  E.expect(Under2x == Subjects.size(),
           "every subject grows by less than a factor of two");
  return E.finish("growth_factor");
}
