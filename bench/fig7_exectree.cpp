//===- fig7_exectree.cpp - Reproduce paper Figures 4 and 7 ----------------===//
//
// Experiment F4/F7 (DESIGN.md): execute the Figure 4 program and print its
// execution tree, which must match the paper's Figure 7 node for node
// (with a root node added for the Main program).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"

using namespace gadt;

static const char *const ExpectedTree =
    R"(main(Out isok: false)
  sqrtest(In ary: [1, 2], In n: 2, Out isok: false)
    arrsum(In a: [1, 2], In n: 2, Out b: 3)
    computs(In y: 3, Out r1: 12, Out r2: 9)
      comput1(In y: 3, Out r1: 12)
        partialsums(In y: 3, Out s1: 6, Out s2: 6)
          sum1(In y: 3, Out s1: 6)
            increment(In y: 3)=4
          sum2(In y: 3, Out s2: 6)
            decrement(In y: 3)=4
        add(In s1: 6, In s2: 6, Out r1: 12)
      comput2(In y: 3, Out r2: 9)
        square(In y: 3, Out r2: 9)
    test(In r1: 12, In r2: 9, Out isok: false)
)";

int main() {
  bench::Expectations E;
  auto Prog = bench::compileOrDie(workload::Figure4Buggy);
  interp::ExecResult Res;
  auto Tree = trace::buildExecTree(*Prog, {}, {}, &Res);
  if (!Res.Ok) {
    std::fprintf(stderr, "execution failed: %s\n", Res.Error.Message.c_str());
    return 2;
  }

  std::printf("Figure 7: execution tree of the Figure 4 program\n\n%s\n",
              Tree->str().c_str());
  std::printf("nodes: %u, interpreter steps: %llu\n", Tree->size(),
              static_cast<unsigned long long>(Res.Steps));

  E.expect(Tree->str() == ExpectedTree,
           "the tree matches the paper's Figure 7 exactly");
  E.expect(Tree->size() == 14, "13 unit executions plus the Main root");
  E.expect(!Res.FinalGlobals.empty() &&
               Res.FinalGlobals[0].Name == "isok" &&
               !Res.FinalGlobals[0].V.asBool(),
           "the program computes isok = false (the observable symptom)");
  return E.finish("fig7_exectree");
}
