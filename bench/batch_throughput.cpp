//===- batch_throughput.cpp - Batch-debugging runtime throughput ----------===//
//
// Measures sessions/second of the parallel batch-debugging runtime at
// 1/2/4/8 worker threads, cold cache vs warm cache, over a mixed workload
// of chain, tree, random and paper programs. Verifies the runtime's core
// guarantees as paper-shape checks:
//
//   - every thread count produces byte-identical results to the serial
//     reference (determinism);
//   - a warm context rebuilds nothing (exact miss counters);
//   - warm-cache throughput beats cold-cache throughput;
//   - with >= 4 hardware threads, 4 workers achieve >= 2x the sessions/sec
//     of 1 worker on a cold cache (skipped on smaller machines — the
//     container this grows in has one core).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/BatchRunner.h"
#include "support/JSON.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

using namespace gadt;
using namespace gadt::bench;
using namespace gadt::runtime;
using namespace gadt::workload;

namespace {

std::vector<SessionRequest> makeWorkload(unsigned N) {
  std::vector<ProgramPair> Pairs;
  for (unsigned K = 1; K <= 4; ++K)
    Pairs.push_back(chainProgram(10, 2 * K));
  Pairs.push_back(treeProgram(3));
  for (uint32_t Seed : {2u, 5u, 9u}) {
    SyntheticOptions Opts;
    Opts.Seed = Seed;
    Opts.NumRoutines = 8;
    Opts.StmtsPerRoutine = 6;
    Pairs.push_back(randomProgram(Opts));
  }
  Pairs.push_back({Figure4Fixed, Figure4Buggy, "decrement"});

  std::vector<SessionRequest> Reqs;
  for (unsigned I = 0; I < N; ++I) {
    const ProgramPair &P = Pairs[I % Pairs.size()];
    SessionRequest R;
    R.Source = P.Buggy;
    R.Intended = P.Fixed;
    Reqs.push_back(std::move(R));
  }
  return Reqs;
}

std::vector<std::string> summaries(const std::vector<SessionResult> &Rs) {
  std::vector<std::string> Out;
  for (const SessionResult &R : Rs)
    Out.push_back(R.summary());
  return Out;
}

double secondsOf(std::chrono::steady_clock::time_point T0,
                 std::chrono::steady_clock::time_point T1) {
  return std::chrono::duration<double>(T1 - T0).count();
}

/// One measured row of the throughput table, kept for --json export.
struct Row {
  unsigned Threads = 0;
  double ColdRate = 0, WarmRate = 0;
  RuntimeStats Warm;
};

void writeJson(const std::string &Path, unsigned NumSessions,
               const std::vector<Row> &Rows, const Expectations &E) {
  std::string Buf;
  json::Writer W(Buf);
  W.beginObject();
  W.key("bench").value("batch_throughput");
  W.key("schema").value(1);
  W.key("sessions").value(NumSessions);
  W.key("hardware_threads").value(std::thread::hardware_concurrency());
  W.key("results").beginArray();
  for (const Row &R : Rows) {
    W.beginObject();
    W.key("threads").value(R.Threads);
    W.key("cold_sessions_per_sec").value(R.ColdRate);
    W.key("warm_sessions_per_sec").value(R.WarmRate);
    W.key("cache_misses").beginObject();
    W.key("program").value(R.Warm.ProgramMisses);
    W.key("transform").value(R.Warm.TransformMisses);
    W.key("sdg").value(R.Warm.SdgMisses);
    W.key("slice").value(R.Warm.SliceMisses);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.key("checks").beginObject();
  W.key("passed").value(E.passed());
  W.key("total").value(E.total());
  W.endObject();
  W.endObject();
  std::ofstream Out(Path);
  Out << Buf << "\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--json" && I + 1 < argc) {
      JsonPath = argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const unsigned NumSessions = 54;
  std::vector<SessionRequest> Reqs = makeWorkload(NumSessions);
  Expectations E;

  std::printf("Batch-debugging throughput: %u sessions, mixed workload "
              "(chains, tree, random, Figure 4)\n",
              NumSessions);
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %14s %14s %12s\n", "threads", "cold (sess/s)",
              "warm (sess/s)", "warm/cold");

  // Serial reference for the byte-identical check.
  std::vector<std::string> Reference;
  {
    RuntimeContext Ctx;
    std::vector<SessionResult> Rs;
    for (const SessionRequest &R : Reqs)
      Rs.push_back(runSession(Ctx, R));
    Reference = summaries(Rs);
  }

  double Cold1 = 0, Cold4 = 0;
  std::vector<Row> Rows;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    auto Ctx = std::make_shared<RuntimeContext>();
    BatchRunner Runner(Ctx, {Threads});

    auto T0 = std::chrono::steady_clock::now();
    std::vector<SessionResult> Cold = Runner.run(Reqs);
    auto T1 = std::chrono::steady_clock::now();
    RuntimeStats AfterCold = Ctx->stats();

    auto T2 = std::chrono::steady_clock::now();
    std::vector<SessionResult> Warm = Runner.run(Reqs);
    auto T3 = std::chrono::steady_clock::now();
    RuntimeStats AfterWarm = Ctx->stats();

    double ColdRate = NumSessions / secondsOf(T0, T1);
    double WarmRate = NumSessions / secondsOf(T2, T3);
    std::printf("%8u %14.1f %14.1f %11.2fx\n", Threads, ColdRate, WarmRate,
                WarmRate / ColdRate);
    Rows.push_back({Threads, ColdRate, WarmRate, AfterWarm});

    E.expect(summaries(Cold) == Reference,
             std::to_string(Threads) +
                 " threads, cold: byte-identical to serial reference");
    E.expect(summaries(Warm) == Reference,
             std::to_string(Threads) +
                 " threads, warm: byte-identical to serial reference");
    E.expect(AfterWarm.TransformMisses == AfterCold.TransformMisses &&
                 AfterWarm.SdgMisses == AfterCold.SdgMisses &&
                 AfterWarm.SliceMisses == AfterCold.SliceMisses &&
                 AfterWarm.ProgramMisses == AfterCold.ProgramMisses,
             std::to_string(Threads) +
                 " threads: warm run rebuilds no artifact");
    if (Threads == 1) {
      Cold1 = ColdRate;
      std::printf("         %s\n", AfterWarm.str().c_str());
      E.expect(WarmRate > ColdRate,
               "warm cache beats cold cache at 1 thread");
    }
    if (Threads == 4)
      Cold4 = ColdRate;
  }

  if (std::thread::hardware_concurrency() >= 4) {
    E.expect(Cold4 >= 2.0 * Cold1,
             "4 threads >= 2x sessions/sec of 1 thread (cold cache)");
  } else {
    std::printf("\nSKIPPED: 4-vs-1 thread speedup check needs >= 4 hardware "
                "threads (found %u); measured ratio %.2fx\n",
                std::thread::hardware_concurrency(), Cold4 / Cold1);
  }

  int Exit = E.finish("batch_throughput");
  if (!JsonPath.empty())
    writeJson(JsonPath, NumSessions, Rows, E);
  return Exit;
}
