//===- BenchUtil.h - Shared helpers for the benchmark harness ---*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the experiment binaries in bench/: compile-or-die, and a
/// tiny expectation facility so each bench can verify the paper's expected
/// *shape* (who wins, what appears, what is pruned) and report PASS/FAIL
/// alongside the regenerated table.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_BENCH_BENCHUTIL_H
#define GADT_BENCH_BENCHUTIL_H

#include "pascal/Frontend.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>

namespace gadt {
namespace bench {

/// Parses and checks, aborting the bench on failure.
inline std::unique_ptr<pascal::Program> compileOrDie(std::string_view Src) {
  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Src, Diags);
  if (!Prog) {
    std::fprintf(stderr, "bench: failed to compile subject:\n%s",
                 Diags.str().c_str());
    std::exit(2);
  }
  return Prog;
}

/// Collects expectation outcomes for the final verdict line.
class Expectations {
public:
  void expect(bool Condition, const std::string &What) {
    ++Total;
    if (Condition) {
      ++Passed;
      return;
    }
    std::printf("  EXPECTATION FAILED: %s\n", What.c_str());
  }

  /// Prints "paper-shape checks: N/N passed" and returns the exit code.
  int finish(const char *BenchName) {
    std::printf("\n[%s] paper-shape checks: %u/%u passed\n", BenchName,
                Passed, Total);
    return Passed == Total ? 0 : 1;
  }

  unsigned passed() const { return Passed; }
  unsigned total() const { return Total; }

private:
  unsigned Total = 0;
  unsigned Passed = 0;
};

} // namespace bench
} // namespace gadt

#endif // GADT_BENCH_BENCHUTIL_H
