//===- fig56_irrelevant_calls.cpp - Reproduce paper Figures 5/6 -----------===//
//
// Experiment F5/F6 (DESIGN.md): the paper's motivating example for
// slicing — procedure p calls p1..pn-1, none of which matter for its
// output y, then pn which does. "Procedures p1, p2,..., pn-1 which execute
// before pn are not involved with the computation of y, but still the
// algorithmic debugger asks about the behavior of all of them." Slicing
// must remove those queries; the table shows query counts with and without
// it as n grows.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "workload/Synthetic.h"

using namespace gadt;
using namespace gadt::core;

int main() {
  bench::Expectations E;
  std::printf("Figures 5/6: queries on a procedure with n-1 irrelevant "
              "calls before the relevant one\n\n");
  std::printf("%6s %18s %18s\n", "n", "pure AD queries",
              "with slicing");

  unsigned LastPure = 0, LastSliced = 0;
  for (unsigned N : {2u, 4u, 8u, 16u, 32u, 64u}) {
    workload::ProgramPair Pair = workload::wideIrrelevantProgram(N);
    auto Buggy = bench::compileOrDie(Pair.Buggy);
    auto Fixed = bench::compileOrDie(Pair.Fixed);

    unsigned Queries[2] = {0, 0};
    for (int WithSlicing = 0; WithSlicing <= 1; ++WithSlicing) {
      DiagnosticsEngine Diags;
      GADTOptions Opts;
      Opts.Debugger.Slicing =
          WithSlicing ? SliceMode::Static : SliceMode::None;
      GADTSession Session(*Buggy, Opts, Diags);
      if (!Session.valid())
        return 2;
      IntendedProgramOracle User(*Fixed);
      BugReport R = Session.debug(User);
      if (!R.Found || R.UnitName != "target")
        return 2;
      Queries[WithSlicing] = Session.stats().userQueries();
    }
    std::printf("%6u %18u %18u\n", N, Queries[0], Queries[1]);
    LastPure = Queries[0];
    LastSliced = Queries[1];

    E.expect(Queries[0] >= N,
             "pure AD asks about every irrelevant call (n=" +
                 std::to_string(N) + ")");
    E.expect(Queries[1] <= 3,
             "slicing removes all irrelevant queries (n=" +
                 std::to_string(N) + ")");
  }
  E.expect(LastSliced * 10 < LastPure,
           "at n=64 slicing saves more than 10x of the dialogue");
  return E.finish("fig56_irrelevant_calls");
}
