//===- fig9_slice2.cpp - Reproduce paper Figure 9 -------------------------===//
//
// Experiment F9 (DESIGN.md): after the user reports "no, error on second
// output variable" for partialsums(In y: 3, Out s1: 6, Out s2: 6), slice
// on s2 — the paper's Figure 9: only the sum2/decrement path survives.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/SDG.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"

using namespace gadt;
using namespace gadt::slicing;

static const char *const ExpectedTree =
    R"(partialsums(In y: 3, Out s1: 6, Out s2: 6)
  sum2(In y: 3, Out s2: 6)
    decrement(In y: 3)=4
)";

int main() {
  bench::Expectations E;
  auto Prog = bench::compileOrDie(workload::Figure4Buggy);
  analysis::SDG G(*Prog);
  interp::InterpOptions Opts;
  Opts.TrackDeps = true; // also exercise the dynamic variant
  interp::ExecResult Res;
  auto Tree = trace::buildExecTree(*Prog, Opts, {}, &Res);

  trace::ExecNode *Partialsums = nullptr;
  Tree->forEachNode([&](trace::ExecNode *N) {
    if (N->getName() == "partialsums")
      Partialsums = N;
  });
  if (!Partialsums)
    return 2;

  StaticSlice Slice =
      sliceOnRoutineOutput(G, Partialsums->getRoutine(), "s2");
  auto KeptStatic = pruneByStaticSlice(Partialsums, Slice);
  auto KeptDynamic = dynamicSlice(Partialsums, "s2");
  std::string RenderedStatic = renderPruned(Partialsums, KeptStatic);
  std::string RenderedDynamic = renderPruned(Partialsums, KeptDynamic);

  std::printf("Figure 9: execution tree after the second slice (on "
              "partialsums output s2)\n\nstatic slicing:\n%s\n"
              "dynamic slicing:\n%s\n",
              RenderedStatic.c_str(), RenderedDynamic.c_str());

  E.expect(RenderedStatic == ExpectedTree,
           "static pruning matches the paper's Figure 9");
  E.expect(RenderedDynamic == ExpectedTree,
           "dynamic pruning agrees on this example");
  E.expect(countRetained(Partialsums, KeptStatic) == 3,
           "sum1 and increment are sliced away");
  return E.finish("fig9_slice2");
}
