//===- fig1_tgen_frames.cpp - Reproduce paper Figure 1 --------------------===//
//
// Experiment F1 (DESIGN.md): regenerate the test frames and scripts of the
// arrsum category-partition specification. The paper states that script_1
// contains exactly the frames (more, mixed, large) and (more, mixed,
// average), and that SINGLE choices generate one frame each.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tgen/FrameGen.h"
#include "tgen/SpecParser.h"
#include "workload/ArrsumFixture.h"

#include <set>

using namespace gadt;
using namespace gadt::tgen;

int main() {
  bench::Expectations E;
  DiagnosticsEngine Diags;
  auto Spec = parseSpec(workload::ArrsumSpec, Diags);
  if (!Spec) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  FrameSet Frames = generateFrames(*Spec);
  std::printf("Figure 1: T-GEN frame generation for 'test arrsum'\n\n");
  std::printf("%-30s %-10s %s\n", "frame", "result", "markers");
  for (size_t I = 0; I != Frames.Frames.size(); ++I) {
    const TestFrame &F = Frames.Frames[I];
    std::string Markers;
    if (F.IsSingle)
      Markers += "single ";
    if (F.IsError)
      Markers += "error";
    std::printf("%-30s %-10s %s\n", F.str().c_str(),
                Frames.ResultOf[I].c_str(), Markers.c_str());
  }
  std::printf("\nscripts:\n");
  for (const auto &[Name, Indices] : Frames.Scripts) {
    std::printf("  %-10s:", Name.c_str());
    for (size_t I : Indices)
      std::printf(" %s", Frames.Frames[I].str().c_str());
    std::printf("\n");
  }

  // Paper-shape checks.
  const std::vector<size_t> *S1 = Frames.framesOfScript("script_1");
  E.expect(S1 != nullptr, "script_1 exists");
  if (S1) {
    std::set<std::string> Codes;
    for (size_t I : *S1)
      Codes.insert(Frames.Frames[I].encode());
    E.expect(Codes ==
                 std::set<std::string>{"more.mixed.large",
                                       "more.mixed.average"},
             "script_1 = {(more,mixed,large), (more,mixed,average)} "
             "as printed in the paper");
  }
  unsigned Singles = 0;
  for (const TestFrame &F : Frames.Frames)
    Singles += F.IsSingle;
  E.expect(Singles == 2,
           "one frame per SINGLE choice (zero and one)");
  E.expect(Frames.Frames.size() == 8, "8 frames in total");
  return E.finish("fig1_tgen_frames");
}
