//===- slice_sizes.cpp - "a slice is often much smaller" (Section 1/4) ----===//
//
// Experiment X5: the paper motivates slicing with "in practice, a slice is
// often much smaller than the original program, especially for
// block-structured languages". We slice every global of every program in
// a random corpus (plus the paper's programs) at program exit and report
// the slice-to-program statement ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/SDG.h"
#include "slicing/StaticSlicer.h"
#include "workload/PaperPrograms.h"
#include "workload/Payroll.h"
#include "workload/Synthetic.h"

#include <string>
#include <vector>

using namespace gadt;
using namespace gadt::slicing;

namespace {

unsigned countStatements(const pascal::Program &P) {
  unsigned Count = 0;
  pascal::forEachRoutine(P.getMain(), [&](pascal::RoutineDecl *R) {
    if (R->getBody())
      pascal::forEachStmt(R->getBody(), [&](pascal::Stmt *) { ++Count; });
  });
  return Count;
}

} // namespace

int main() {
  bench::Expectations E;
  std::printf("X5: static slice size vs program size (criterion: one "
              "global at program exit)\n\n");
  std::printf("%-16s %-10s %8s %8s %8s\n", "program", "criterion", "stmts",
              "sliced", "ratio");

  struct Subject {
    std::string Name;
    std::string Source;
    std::vector<std::string> Criteria;
  };
  std::vector<Subject> Subjects = {
      {"figure2", workload::Figure2, {"mul", "sum"}},
      {"figure4", workload::Figure4Buggy, {"isok"}},
      {"payroll", workload::PayrollCorrect,
       {"totalnet", "totaltax", "highest"}},
  };
  for (uint32_t Seed = 1; Seed <= 10; ++Seed) {
    workload::SyntheticOptions Opts;
    Opts.Seed = Seed * 97 + 1;
    Opts.NumRoutines = 4 + Seed % 5;
    Opts.NumGlobals = 2 + Seed % 2;
    Subjects.push_back({"random-" + std::to_string(Seed),
                        workload::randomProgram(Opts).Fixed,
                        {"g1", "g2"}});
  }

  double SumRatio = 0;
  unsigned Measurements = 0, ProperSubsets = 0;
  for (const Subject &S : Subjects) {
    auto Prog = bench::compileOrDie(S.Source);
    analysis::SDG G(*Prog);
    unsigned Total = countStatements(*Prog);
    for (const std::string &Criterion : S.Criteria) {
      StaticSlice Slice = sliceOnProgramVar(G, *Prog, Criterion);
      if (Slice.size() == 0)
        continue;
      unsigned Sliced = static_cast<unsigned>(Slice.stmts().size());
      double Ratio = static_cast<double>(Sliced) / Total;
      SumRatio += Ratio;
      ++Measurements;
      ProperSubsets += Sliced < Total;
      std::printf("%-16s %-10s %8u %8u %8.2f\n", S.Name.c_str(),
                  Criterion.c_str(), Total, Sliced, Ratio);
    }
  }
  std::printf("\nmean ratio: %.2f over %u slices; %u/%u are proper "
              "subsets\n",
              SumRatio / Measurements, Measurements, ProperSubsets,
              Measurements);

  E.expect(Measurements >= 20, "corpus yields enough slice measurements");
  E.expect(SumRatio / Measurements < 0.9,
           "slices are on average much smaller than the program");
  E.expect(ProperSubsets * 2 > Measurements,
           "most slices drop statements");
  return E.finish("slice_sizes");
}
